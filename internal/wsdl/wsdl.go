// Package wsdl implements the WSDL 1.1 subset the paper's SOAP subsystem
// publishes: an rpc/encoded service description with an XSD schema for
// user-defined complex types (structs and arrays), request/response
// messages per distributed method, a portType, binding, and a service
// element carrying the SOAP endpoint address. Generate is the SDE's WSDL
// Generator component (Figure 4); Parse+Resolve form the client-side "WSDL
// compiler" (Figure 1).
//
// Type mapping: dyn primitives map to xsd types (int32→xsd:int,
// int64→xsd:long, ...); char maps to the schema simple type tns:char
// (an xsd:string restriction) so that CORBA/SOAP signatures stay
// interconvertible; structs map to named complexTypes with element fields;
// sequences map to complexTypes named ArrayOf… whose single element "item"
// has maxOccurs="unbounded". Array element naming follows the Axis
// convention: ArrayOf_xsd_int, ArrayOfMessage, ArrayOfArrayOf_xsd_int.
package wsdl

import (
	"fmt"
	"sort"

	"livedev/internal/dyn"
	"livedev/internal/soap"
)

// WSDL/XSD namespace URIs.
const (
	NSWSDL     = "http://schemas.xmlsoap.org/wsdl/"
	NSWSDLSOAP = "http://schemas.xmlsoap.org/wsdl/soap/"
	NSXSD      = "http://www.w3.org/2001/XMLSchema"
	NSSOAPEnc  = "http://schemas.xmlsoap.org/soap/encoding/"
)

// Document is an abstract WSDL document: everything the CDE needs to build
// stubs. It is produced either by Generate (server side) or Parse (client
// side).
type Document struct {
	// ServiceName is the service (and class) name.
	ServiceName string
	// TargetNS is the service namespace, "urn:<ServiceName>".
	TargetNS string
	// Endpoint is the SOAP endpoint URL ("" in a minimal document
	// published before the call handler is active).
	Endpoint string
	// Methods are the operations, name-sorted, with resolved dyn types.
	Methods []dyn.MethodSig
}

// Descriptor converts the document back to an interface descriptor whose
// hash is comparable with the server class's descriptor.
func (d *Document) Descriptor() dyn.InterfaceDescriptor {
	desc := dyn.InterfaceDescriptor{ClassName: d.ServiceName, Methods: d.Methods}
	structSet := make(map[string]*dyn.Type)
	for _, m := range d.Methods {
		dyn.CollectStructs(m.Result, structSet)
		for _, p := range m.Params {
			dyn.CollectStructs(p.Type, structSet)
		}
	}
	for _, n := range dyn.SortedStructNames(structSet) {
		desc.Structs = append(desc.Structs, structSet[n])
	}
	return desc
}

// Lookup returns the signature of the named operation.
func (d *Document) Lookup(name string) (dyn.MethodSig, bool) {
	for _, m := range d.Methods {
		if m.Name == name {
			return m, true
		}
	}
	return dyn.MethodSig{}, false
}

// Generate builds the WSDL document for a class's distributed interface
// with the given endpoint URL (may be empty for the minimal document the
// SDE publishes at initialization, which contains the endpoint address but
// no operations — here: operations from desc, endpoint as given).
func Generate(desc dyn.InterfaceDescriptor, endpoint string) *Document {
	methods := make([]dyn.MethodSig, len(desc.Methods))
	copy(methods, desc.Methods)
	return &Document{
		ServiceName: desc.ClassName,
		TargetNS:    "urn:" + desc.ClassName,
		Endpoint:    endpoint,
		Methods:     methods,
	}
}

// xsdTypeName maps a dyn type to its WSDL type reference, registering any
// needed complexType definitions in defs (name → *dyn.Type).
func xsdTypeName(t *dyn.Type, defs map[string]*dyn.Type) (string, error) {
	switch t.Kind() {
	case dyn.KindBoolean:
		return "xsd:boolean", nil
	case dyn.KindChar:
		return "tns:char", nil
	case dyn.KindInt32:
		return "xsd:int", nil
	case dyn.KindInt64:
		return "xsd:long", nil
	case dyn.KindFloat32:
		return "xsd:float", nil
	case dyn.KindFloat64:
		return "xsd:double", nil
	case dyn.KindString:
		return "xsd:string", nil
	case dyn.KindStruct:
		if _, ok := defs[t.Name()]; !ok {
			defs[t.Name()] = t
			for _, f := range t.Fields() {
				if _, err := xsdTypeName(f.Type, defs); err != nil {
					return "", err
				}
			}
		}
		return "tns:" + t.Name(), nil
	case dyn.KindSequence:
		inner, err := xsdTypeName(t.Elem(), defs)
		if err != nil {
			return "", err
		}
		name := arrayTypeName(inner)
		if _, ok := defs[name]; !ok {
			defs[name] = t
		}
		return "tns:" + name, nil
	default:
		return "", fmt.Errorf("wsdl: no mapping for kind %s", t.Kind())
	}
}

// arrayTypeName builds Axis-style array type names from the element's
// qualified reference: "xsd:int" → "ArrayOf_xsd_int", "tns:Message" →
// "ArrayOfMessage", "tns:ArrayOf_xsd_int" → "ArrayOfArrayOf_xsd_int".
func arrayTypeName(elemRef string) string {
	switch {
	case len(elemRef) > 4 && elemRef[:4] == "xsd:":
		return "ArrayOf_xsd_" + elemRef[4:]
	case len(elemRef) > 4 && elemRef[:4] == "tns:":
		return "ArrayOf" + elemRef[4:]
	default:
		return "ArrayOf" + elemRef
	}
}

// XML renders the document as WSDL 1.1 text.
func (d *Document) XML() (string, error) {
	defs := make(map[string]*dyn.Type)

	root := soap.NewNode("wsdl:definitions")
	root.Attrs["name"] = d.ServiceName
	root.Attrs["targetNamespace"] = d.TargetNS
	root.Attrs["xmlns:wsdl"] = NSWSDL
	root.Attrs["xmlns:soap"] = NSWSDLSOAP
	root.Attrs["xmlns:xsd"] = NSXSD
	root.Attrs["xmlns:tns"] = d.TargetNS

	// Pre-walk every signature to collect type definitions, and remember
	// part type references.
	type partRef struct{ name, ref string }
	type opRefs struct {
		in  []partRef
		out []partRef // empty for void
	}
	ops := make(map[string]opRefs, len(d.Methods))
	usesChar := false
	var walk func(t *dyn.Type) (string, error)
	walk = func(t *dyn.Type) (string, error) {
		ref, err := xsdTypeName(t, defs)
		if err != nil {
			return "", err
		}
		if t.Kind() == dyn.KindChar {
			usesChar = true
		}
		// char may be nested inside structs/sequences too.
		switch t.Kind() {
		case dyn.KindSequence:
			if _, err := walk(t.Elem()); err != nil {
				return "", err
			}
		case dyn.KindStruct:
			for _, f := range t.Fields() {
				if _, err := walk(f.Type); err != nil {
					return "", err
				}
			}
		}
		return ref, nil
	}
	for _, m := range d.Methods {
		var refs opRefs
		for _, p := range m.Params {
			ref, err := walk(p.Type)
			if err != nil {
				return "", fmt.Errorf("wsdl: operation %s parameter %s: %w", m.Name, p.Name, err)
			}
			refs.in = append(refs.in, partRef{p.Name, ref})
		}
		if m.Result.Kind() != dyn.KindVoid {
			ref, err := walk(m.Result)
			if err != nil {
				return "", fmt.Errorf("wsdl: operation %s result: %w", m.Name, err)
			}
			refs.out = append(refs.out, partRef{"return", ref})
		}
		ops[m.Name] = refs
	}

	// <types> schema.
	types := root.Append(soap.NewNode("wsdl:types"))
	schema := types.Append(soap.NewNode("xsd:schema"))
	schema.Attrs["targetNamespace"] = d.TargetNS
	if usesChar {
		st := schema.Append(soap.NewNode("xsd:simpleType"))
		st.Attrs["name"] = "char"
		re := st.Append(soap.NewNode("xsd:restriction"))
		re.Attrs["base"] = "xsd:string"
		ln := re.Append(soap.NewNode("xsd:length"))
		ln.Attrs["value"] = "1"
	}
	names := make([]string, 0, len(defs))
	for n := range defs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := defs[n]
		ct := schema.Append(soap.NewNode("xsd:complexType"))
		ct.Attrs["name"] = n
		seq := ct.Append(soap.NewNode("xsd:sequence"))
		if t.Kind() == dyn.KindSequence {
			item := seq.Append(soap.NewNode("xsd:element"))
			item.Attrs["name"] = "item"
			ref, err := xsdTypeName(t.Elem(), defs)
			if err != nil {
				return "", err
			}
			item.Attrs["type"] = ref
			item.Attrs["minOccurs"] = "0"
			item.Attrs["maxOccurs"] = "unbounded"
			continue
		}
		for _, f := range t.Fields() {
			el := seq.Append(soap.NewNode("xsd:element"))
			el.Attrs["name"] = f.Name
			ref, err := xsdTypeName(f.Type, defs)
			if err != nil {
				return "", err
			}
			el.Attrs["type"] = ref
		}
	}

	// Messages.
	for _, m := range d.Methods {
		refs := ops[m.Name]
		req := root.Append(soap.NewNode("wsdl:message"))
		req.Attrs["name"] = m.Name + "Request"
		for _, pr := range refs.in {
			part := req.Append(soap.NewNode("wsdl:part"))
			part.Attrs["name"] = pr.name
			part.Attrs["type"] = pr.ref
		}
		resp := root.Append(soap.NewNode("wsdl:message"))
		resp.Attrs["name"] = m.Name + "Response"
		for _, pr := range refs.out {
			part := resp.Append(soap.NewNode("wsdl:part"))
			part.Attrs["name"] = pr.name
			part.Attrs["type"] = pr.ref
		}
	}

	// PortType.
	pt := root.Append(soap.NewNode("wsdl:portType"))
	pt.Attrs["name"] = d.ServiceName + "PortType"
	for _, m := range d.Methods {
		op := pt.Append(soap.NewNode("wsdl:operation"))
		op.Attrs["name"] = m.Name
		in := op.Append(soap.NewNode("wsdl:input"))
		in.Attrs["message"] = "tns:" + m.Name + "Request"
		out := op.Append(soap.NewNode("wsdl:output"))
		out.Attrs["message"] = "tns:" + m.Name + "Response"
	}

	// Binding (rpc/encoded over HTTP).
	binding := root.Append(soap.NewNode("wsdl:binding"))
	binding.Attrs["name"] = d.ServiceName + "Binding"
	binding.Attrs["type"] = "tns:" + d.ServiceName + "PortType"
	sb := binding.Append(soap.NewNode("soap:binding"))
	sb.Attrs["style"] = "rpc"
	sb.Attrs["transport"] = "http://schemas.xmlsoap.org/soap/http"
	for _, m := range d.Methods {
		op := binding.Append(soap.NewNode("wsdl:operation"))
		op.Attrs["name"] = m.Name
		so := op.Append(soap.NewNode("soap:operation"))
		so.Attrs["soapAction"] = d.TargetNS + "#" + m.Name
		for _, dir := range []string{"input", "output"} {
			dn := op.Append(soap.NewNode("wsdl:" + dir))
			body := dn.Append(soap.NewNode("soap:body"))
			body.Attrs["use"] = "encoded"
			body.Attrs["namespace"] = d.TargetNS
			body.Attrs["encodingStyle"] = NSSOAPEnc
		}
	}

	// Service + port + endpoint address.
	svc := root.Append(soap.NewNode("wsdl:service"))
	svc.Attrs["name"] = d.ServiceName
	port := svc.Append(soap.NewNode("wsdl:port"))
	port.Attrs["name"] = d.ServiceName + "Port"
	port.Attrs["binding"] = "tns:" + d.ServiceName + "Binding"
	addr := port.Append(soap.NewNode("soap:address"))
	addr.Attrs["location"] = d.Endpoint

	return `<?xml version="1.0" encoding="UTF-8"?>` + "\n" + root.Render(), nil
}
