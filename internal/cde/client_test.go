package cde

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"livedev/internal/dyn"
)

// fakeBackend is a scriptable Backend: it serves interface descriptors from
// a versioned store and dispatches invocations to a function.
type fakeBackend struct {
	mu       sync.Mutex
	desc     dyn.InterfaceDescriptor
	vers     DocVersions
	fetchErr error
	invoke   func(sig dyn.MethodSig, args []dyn.Value) (dyn.Value, error)
	fetches  int
	staleErr error // the error that counts as "Non Existent Method"
	closed   bool
}

var _ Backend = (*fakeBackend)(nil)

var errFakeStale = errors.New("fake: non existent method")

func newFakeBackend() *fakeBackend {
	b := &fakeBackend{staleErr: errFakeStale}
	b.setInterface(descWith("ping"))
	return b
}

func descWith(methods ...string) dyn.InterfaceDescriptor {
	c := dyn.NewClass("Svc")
	for _, m := range methods {
		_, _ = c.AddMethod(dyn.MethodSpec{
			Name:        m,
			Result:      dyn.StringT,
			Distributed: true,
		})
	}
	return c.Interface()
}

func (b *fakeBackend) setInterface(d dyn.InterfaceDescriptor) {
	b.mu.Lock()
	b.desc = d
	b.vers.Doc++
	b.vers.Descriptor++
	b.mu.Unlock()
}

func (b *fakeBackend) FetchInterface(context.Context) (dyn.InterfaceDescriptor, DocVersions, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fetches++
	if b.fetchErr != nil {
		return dyn.InterfaceDescriptor{}, DocVersions{}, b.fetchErr
	}
	return b.desc, b.vers, nil
}

func (b *fakeBackend) Invoke(_ context.Context, sig dyn.MethodSig, args []dyn.Value) (dyn.Value, error) {
	b.mu.Lock()
	fn := b.invoke
	b.mu.Unlock()
	if fn != nil {
		return fn(sig, args)
	}
	return dyn.StringValue("pong"), nil
}

func (b *fakeBackend) IsStale(err error) bool { return errors.Is(err, errFakeStale) }
func (b *fakeBackend) Technology() string     { return "FAKE" }
func (b *fakeBackend) Close() error {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	return nil
}

func TestNewClientFetchesInterface(t *testing.T) {
	b := newFakeBackend()
	c, err := NewClient(b)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, ok := c.Interface().Lookup("ping"); !ok {
		t.Error("initial interface should contain ping")
	}
	if c.Technology() != "FAKE" {
		t.Error("Technology()")
	}
	if c.Versions().Doc != 1 {
		t.Errorf("versions = %+v", c.Versions())
	}
}

func TestNewClientFetchFailure(t *testing.T) {
	b := newFakeBackend()
	b.fetchErr = errors.New("interface server down")
	if _, err := NewClient(b); err == nil {
		t.Error("NewClient should fail when the initial fetch fails")
	}
}

func TestCallSuccess(t *testing.T) {
	b := newFakeBackend()
	c, err := NewClient(b)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	v, err := c.Call("ping")
	if err != nil || v.Str() != "pong" {
		t.Errorf("Call = %v, %v", v, err)
	}
	if c.Stats().Calls != 1 {
		t.Errorf("stats = %+v", c.Stats())
	}
}

func TestCallUnknownMethodRefreshesOnce(t *testing.T) {
	b := newFakeBackend()
	c, err := NewClient(b)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The server gained a method the client has not seen: Call must
	// refresh and find it.
	b.setInterface(descWith("ping", "added"))
	if _, err := c.Call("added"); err != nil {
		t.Errorf("Call(added) after server-side addition: %v", err)
	}

	// A genuinely unknown method fails with ErrNoSuchStub after refresh.
	if _, err := c.Call("ghost"); !errors.Is(err, ErrNoSuchStub) {
		t.Errorf("Call(ghost) = %v", err)
	}
}

func TestStaleCallRefreshesBeforeDelivery(t *testing.T) {
	// The Section 6 client algorithm: when the server says "Non Existent
	// Method", the client's interface view is updated BEFORE the exception
	// reaches the caller.
	b := newFakeBackend()
	c, err := NewClient(b)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Server renames ping→pong and will reject ping calls as stale.
	b.setInterface(descWith("pong"))
	b.invoke = func(sig dyn.MethodSig, _ []dyn.Value) (dyn.Value, error) {
		if sig.Name == "ping" {
			return dyn.Value{}, errFakeStale
		}
		return dyn.StringValue("ok"), nil
	}

	_, err = c.Call("ping")
	var stale *StaleMethodError
	if !errors.As(err, &stale) {
		t.Fatalf("Call(ping) = %v, want StaleMethodError", err)
	}
	if !errors.Is(err, ErrStaleMethod) {
		t.Error("errors.Is(err, ErrStaleMethod) should hold")
	}
	if !errors.Is(err, errFakeStale) {
		t.Error("cause should be preserved in the chain")
	}
	// By delivery time the view shows the rename.
	if _, ok := c.Interface().Lookup("pong"); !ok {
		t.Error("client view must be refreshed before the exception is delivered")
	}
	if _, ok := c.Interface().Lookup("ping"); ok {
		t.Error("stale method must be gone from the refreshed view")
	}
	if stale.RefreshedDescriptorVersion != c.Versions().Descriptor {
		t.Error("error must carry the refreshed descriptor version")
	}
	if c.Stats().StaleFaults != 1 {
		t.Errorf("stats = %+v", c.Stats())
	}
	if stale.Error() == "" {
		t.Error("Error() empty")
	}
}

func TestDebuggerRecordsAndTryAgain(t *testing.T) {
	b := newFakeBackend()
	c, err := NewClient(b)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var prompted []Exception
	c.Debugger().SetPrompt(func(ex Exception) { prompted = append(prompted, ex) })

	if _, ok := c.Debugger().Last(); ok {
		t.Error("no exception should be recorded yet")
	}
	if _, err := c.Debugger().TryAgain(); err == nil {
		t.Error("TryAgain with no failure should error")
	}

	// Fail a call; the debugger records it and prompts.
	var failing sync.Mutex
	shouldFail := true
	b.invoke = func(sig dyn.MethodSig, _ []dyn.Value) (dyn.Value, error) {
		failing.Lock()
		defer failing.Unlock()
		if shouldFail && sig.Name == "ping" {
			return dyn.Value{}, errFakeStale
		}
		return dyn.StringValue("recovered"), nil
	}
	if _, err := c.Call("ping"); !errors.Is(err, ErrStaleMethod) {
		t.Fatalf("Call = %v", err)
	}
	if len(prompted) != 1 || prompted[0].Method != "ping" {
		t.Fatalf("prompted = %+v", prompted)
	}
	ex, ok := c.Debugger().Last()
	if !ok || ex.Method != "ping" {
		t.Fatalf("Last = %+v, %v", ex, ok)
	}
	// ping still exists in the (unchanged) interface, so the debugger
	// shows its current signature.
	if ex.SignatureNow == nil || ex.SignatureNow.Name != "ping" {
		t.Errorf("SignatureNow = %+v", ex.SignatureNow)
	}

	// The server developer "changes the method signature back": try again
	// resumes normal execution (Section 6's try-again flow).
	failing.Lock()
	shouldFail = false
	failing.Unlock()
	v, err := c.Debugger().TryAgain()
	if err != nil || v.Str() != "recovered" {
		t.Errorf("TryAgain = %v, %v", v, err)
	}
}

func TestRefreshNeverMovesBackwards(t *testing.T) {
	b := newFakeBackend()
	c, err := NewClient(b)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	v1 := c.Versions()

	b.setInterface(descWith("ping", "more"))
	if err := c.Refresh(); err != nil {
		t.Fatal(err)
	}
	v2 := c.Versions()
	if v2.Doc <= v1.Doc {
		t.Fatal("refresh should advance the doc version")
	}
	// Simulate an old in-flight fetch result arriving late: serving a
	// stale document must not regress the view. We emulate by dropping the
	// backend's version below the client's.
	b.mu.Lock()
	b.desc = descWith("ping")
	b.vers = DocVersions{Doc: v2.Doc - 1, Descriptor: v2.Descriptor - 1}
	b.mu.Unlock()
	if err := c.Refresh(); err != nil {
		t.Fatal(err)
	}
	if c.Versions().Doc != v2.Doc {
		t.Error("client view must not move backwards")
	}
	if _, ok := c.Interface().Lookup("more"); !ok {
		t.Error("newer view must be retained")
	}
}

func TestNonStaleErrorsPassThrough(t *testing.T) {
	b := newFakeBackend()
	c, err := NewClient(b)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	appErr := errors.New("database on fire")
	b.invoke = func(dyn.MethodSig, []dyn.Value) (dyn.Value, error) {
		return dyn.Value{}, appErr
	}
	_, err = c.Call("ping")
	if !errors.Is(err, appErr) {
		t.Errorf("Call = %v", err)
	}
	if errors.Is(err, ErrStaleMethod) {
		t.Error("app errors must not look stale")
	}
	if c.Stats().StaleFaults != 0 {
		t.Error("app errors must not count as stale faults")
	}
}

func TestAutoRefresh(t *testing.T) {
	b := newFakeBackend()
	c, err := NewClient(b)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	stop := c.AutoRefresh(5 * time.Millisecond)
	b.setInterface(descWith("ping", "fresh"))
	deadline := time.After(2 * time.Second)
	for {
		if _, ok := c.Interface().Lookup("fresh"); ok {
			break
		}
		select {
		case <-deadline:
			t.Fatal("auto refresh never picked up the new interface")
		case <-time.After(2 * time.Millisecond):
		}
	}
	stop()
	stop() // idempotent
}

func TestStaleWithFailedRefreshStillDeliversStaleError(t *testing.T) {
	b := newFakeBackend()
	c, err := NewClient(b)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	b.invoke = func(dyn.MethodSig, []dyn.Value) (dyn.Value, error) {
		return dyn.Value{}, errFakeStale
	}
	b.mu.Lock()
	b.fetchErr = fmt.Errorf("interface server unreachable")
	b.mu.Unlock()

	_, err = c.Call("ping")
	if !errors.Is(err, ErrStaleMethod) {
		t.Fatalf("Call = %v", err)
	}
	var stale *StaleMethodError
	if !errors.As(err, &stale) {
		t.Fatal("want StaleMethodError")
	}
	if stale.Cause == nil {
		t.Error("cause should mention the refresh failure")
	}
}

func TestInterfaceNameFromTypeID(t *testing.T) {
	cases := map[string]string{
		"IDL:CalcModule/Calc:1.0": "Calc",
		"IDL:Mail:1.0":            "Mail",
		"IDL:a/b/C:2.3":           "C",
	}
	for in, want := range cases {
		got, err := interfaceNameFromTypeID(in)
		if err != nil || got != want {
			t.Errorf("interfaceNameFromTypeID(%q) = %q, %v", in, got, err)
		}
	}
	for _, bad := range []string{"", "Calc:1.0", "IDL:", "IDL::1.0", "IDL:Mod/:1.0", "IDL:NoColon"} {
		if _, err := interfaceNameFromTypeID(bad); err == nil {
			t.Errorf("interfaceNameFromTypeID(%q) should fail", bad)
		}
	}
}
