package cde

import (
	"context"
	"strings"
	"testing"

	"livedev/internal/ifsvr"
)

func TestMatchConnectorScoring(t *testing.T) {
	// The built-in SOAP and CORBA connectors are registered by init().
	cases := []struct {
		name    string
		url     string
		doc     ifsvr.Document
		want    string
		wantErr bool
	}{
		{
			name: "wsdl by content type and suffix",
			url:  "http://host/wsdl/Calc.wsdl",
			doc:  ifsvr.Document{ContentType: `text/xml; charset="utf-8"`, Content: `<definitions xmlns="..."/>`},
			want: "SOAP",
		},
		{
			name: "idl by suffix and content",
			url:  "http://host/idl/Calc.idl",
			doc:  ifsvr.Document{ContentType: "text/plain", Content: "module CalcModule { interface Calc {}; };"},
			want: "CORBA",
		},
		{
			name: "ior by suffix and prefix",
			url:  "http://host/ior/Calc.ior",
			doc:  ifsvr.Document{ContentType: "text/plain", Content: "IOR:0001"},
			want: "CORBA",
		},
		{
			name:    "unrecognizable document",
			url:     "http://host/mystery.bin",
			doc:     ifsvr.Document{ContentType: "application/octet-stream", Content: "\x00\x01"},
			wantErr: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := matchConnector(tc.url, tc.doc)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("matched %s, want error", c.Name)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if c.Name != tc.want {
				t.Errorf("matched %s, want %s", c.Name, tc.want)
			}
		})
	}
}

func TestDialUnknownBindingError(t *testing.T) {
	_, err := Dial(context.Background(), "http://127.0.0.1:0/x", &DialOptions{Binding: "GOPHER"})
	if err == nil || !strings.Contains(err.Error(), "GOPHER") {
		t.Fatalf("want unknown-binding error naming GOPHER, got %v", err)
	}
	// The error lists what IS registered, to guide the caller.
	if !strings.Contains(err.Error(), "SOAP") {
		t.Errorf("error should list registered bindings: %v", err)
	}
}
