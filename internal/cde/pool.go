package cde

import (
	"context"
	"fmt"
	"net/http"
	"sync"

	"livedev/internal/ior"
	"livedev/internal/orb"
)

// Client-side connection reuse across Dials and compiled stubs.
//
// HTTP bindings already share a keep-alive transport inside their callers
// (soap and jsonb clone http.DefaultTransport once per process); the CDE's
// own document traffic — interface fetches and watch long-polls — goes
// through sharedDocClient below when the caller supplies no HTTP client,
// so every stub compiled against the same Interface Server reuses one
// connection pool instead of dialing per fetch.
//
// The CORBA side has no transport-level pool to lean on, so the CDE keeps
// one: IIOP connections are shared per endpoint (profile address + object
// key), refcounted across the backends that hold them. Two Dials to the
// same published IOR multiplex one TCP connection; iiop.Conn is built for
// that (concurrent requests are matched by request ID).

// sharedDocClient serves interface-document fetches and watch polls when no
// explicit HTTP client is configured. It deliberately has no client-level
// Timeout: watch polls are long by design and are bounded by their
// contexts; per-call deadlines come from Dial's WithTimeout option.
//
// Its transport prefers cleartext HTTP/2: against an h2c-enabled Interface
// Server (every ifsvr listener since EnableH2C) all of one process's SSE
// watch streams and long-polls multiplex onto one TCP connection per
// endpoint instead of one per watcher, and it degrades per host to plain
// HTTP/1.1 against servers without the protocol (see h2cProbeTransport).
var sharedDocClient = &http.Client{Transport: newDocTransport()}

// docClient resolves the HTTP client used for document traffic.
func docClient(hc *http.Client) *http.Client {
	if hc != nil {
		return hc
	}
	return sharedDocClient
}

// orbPoolEntry is one shared client ORB plus its refcount. While the dial
// is in flight the entry exists with a nil orb; ready is closed when the
// dial settles (successfully or not).
type orbPoolEntry struct {
	ready chan struct{}
	orb   *orb.ClientORB
	refs  int
}

// orbPool shares ClientORBs per endpoint.
type orbPool struct {
	mu    sync.Mutex
	conns map[string]*orbPoolEntry
}

var sharedORBs = &orbPool{conns: make(map[string]*orbPoolEntry)}

// orbPoolKey identifies one remote object endpoint.
func orbPoolKey(ref ior.IOR) (string, error) {
	p, err := ref.FirstIIOP()
	if err != nil {
		return "", err
	}
	return p.Addr() + "|" + string(p.ObjectKey), nil
}

// acquire returns a shared ClientORB for ref, dialing once per endpoint no
// matter how many backends connect concurrently. The returned release must
// be called exactly once when the backend closes; the connection is torn
// down when the last holder releases it.
func (p *orbPool) acquire(ctx context.Context, ref ior.IOR) (*orb.ClientORB, func() error, error) {
	key, err := orbPoolKey(ref)
	if err != nil {
		return nil, nil, err
	}
	p.mu.Lock()
	for {
		e := p.conns[key]
		if e == nil {
			break
		}
		if e.orb == nil {
			// A dial is in flight; wait for it to settle and re-check (a
			// failed dial removes the entry, so the loop re-dials).
			ready := e.ready
			p.mu.Unlock()
			select {
			case <-ready:
			case <-ctx.Done():
				return nil, nil, fmt.Errorf("cde: waiting for shared IIOP connection: %w", ctx.Err())
			}
			p.mu.Lock()
			continue
		}
		if e.orb.Broken() {
			// The pooled connection died (server restart, network drop):
			// evict it so this and future Dials reconnect instead of
			// inheriting the dead socket. Existing holders keep their
			// entry-bound releases; the last of them closes the old conn.
			delete(p.conns, key)
			break
		}
		e.refs++
		p.mu.Unlock()
		return e.orb, p.releaser(key, e), nil
	}
	e := &orbPoolEntry{ready: make(chan struct{}), refs: 1}
	p.conns[key] = e
	p.mu.Unlock()

	conn, err := orb.DialIORContext(ctx, ref)

	p.mu.Lock()
	if err != nil {
		if p.conns[key] == e {
			delete(p.conns, key)
		}
		close(e.ready)
		p.mu.Unlock()
		return nil, nil, err
	}
	e.orb = conn
	close(e.ready)
	p.mu.Unlock()
	return conn, p.releaser(key, e), nil
}

// releaser returns the once-only release func bound to one entry (not just
// the key: an evicted-and-replaced entry must not decrement its successor).
func (p *orbPool) releaser(key string, e *orbPoolEntry) func() error {
	var once sync.Once
	return func() error {
		var err error
		once.Do(func() {
			p.mu.Lock()
			e.refs--
			last := e.refs == 0
			if last && p.conns[key] == e {
				delete(p.conns, key)
			}
			conn := e.orb
			p.mu.Unlock()
			if last && conn != nil {
				err = conn.Close()
			}
		})
		return err
	}
}

// evictBroken removes the pool entry holding conn when the connection is
// dead, so later acquires re-dial instead of inheriting the broken socket.
// The CORBA backend calls it when a watch update signals a server restart;
// holders keep their entry-bound releases and the last of them closes the
// old connection.
func (p *orbPool) evictBroken(conn *orb.ClientORB) {
	if conn == nil || !conn.Broken() {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for key, e := range p.conns {
		if e.orb == conn {
			delete(p.conns, key)
		}
	}
}

// stats reports the pool's current size and total holder count.
func (p *orbPool) stats() (conns, refs int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range p.conns {
		conns++
		refs += e.refs
	}
	return conns, refs
}

// IIOPPoolStats reports the shared IIOP connection pool's current size and
// total holder count — observability for tests and the experiments harness.
func IIOPPoolStats() (conns, refs int) { return sharedORBs.stats() }
