package cde

import (
	"context"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"livedev/internal/core"
	"livedev/internal/dyn"
)

// countingTransport counts round trips — every dial a reconnecting
// watcher makes shows up here, connection-refused included.
type countingTransport struct {
	n atomic.Int64
}

func (c *countingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	c.n.Add(1)
	return http.DefaultTransport.RoundTrip(req)
}

// TestDeadEndpointDialsArePaced is the reconnect-storm regression test: N
// watch clients whose server dies must make O(log) dials per second —
// capped jittered exponential backoff — not spin hot through failover. A
// hot loop here produces tens of thousands of dials in the window; backoff
// produces a handful per client.
func TestDeadEndpointDialsArePaced(t *testing.T) {
	mgr, err := core.NewManager(core.Config{Timeout: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	class := dyn.NewClass("Paced")
	if _, err := class.AddMethod(dyn.MethodSpec{Name: "op", Result: dyn.Int32T, Distributed: true}); err != nil {
		t.Fatal(err)
	}
	srv, err := mgr.Register(class, core.TechSOAP)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		t.Fatal(err)
	}

	const clients = 5
	tr := &countingTransport{}
	hc := &http.Client{Transport: tr}
	var conns []*Client
	for i := 0; i < clients; i++ {
		c, err := Dial(context.Background(), srv.InterfaceURL(), &DialOptions{Watch: true, HTTPClient: hc})
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	defer func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}()

	// Kill the server: every endpoint the watchers know is now dead.
	if err := mgr.Close(); err != nil {
		t.Fatalf("closing manager: %v", err)
	}

	// Let the immediate post-drain reconnects (deliberately unpaced: the
	// drain frame says "go now") fail once, then measure the steady state.
	time.Sleep(300 * time.Millisecond)
	tr.n.Store(0)
	const window = 2500 * time.Millisecond
	time.Sleep(window)
	dials := tr.n.Load()

	// 5 clients × exponential ladder (≈4 attempts each in 2.5s at the
	// 200ms base) plus jitter: anything near double digits is healthy;
	// a hot spin would be >10k. The bound is loose on purpose — it fails
	// only if backoff is gone, not on scheduler noise.
	if dials == 0 {
		t.Fatal("no reconnect attempts at all — watchers gave up instead of backing off")
	}
	if perSec := float64(dials) / window.Seconds(); perSec > 40 {
		t.Fatalf("%d dials in %s (%.0f/s) against a dead endpoint — reconnects are not backed off", dials, window, perSec)
	}

	var backoffs uint64
	for _, c := range conns {
		backoffs += c.Stats().Backoffs
	}
	if backoffs == 0 {
		t.Fatal("ClientStats.Backoffs never moved while reconnecting against a dead endpoint")
	}
	t.Logf("dials in window: %d, backoff waits: %d", dials, backoffs)
}

// TestBackoffResetsOnRecovery: once the endpoint is healthy again the next
// failure streak starts from the base delay, not the accumulated cap —
// success resets the ladder.
func TestBackoffResetsOnRecovery(t *testing.T) {
	var src DocSource
	src.bo.Base = 10 * time.Millisecond
	src.bo.Cap = 100 * time.Millisecond
	for i := 0; i < 10; i++ {
		src.bo.Fail()
	}
	if d := src.bo.Delay(); d < 50*time.Millisecond {
		t.Fatalf("after 10 failures delay = %v, want at least half the cap", d)
	}
	src.bo.Reset()
	if d := src.bo.Delay(); d != 0 {
		t.Fatalf("after reset delay = %v, want 0", d)
	}
	src.bo.Fail()
	if d := src.bo.Delay(); d > 10*time.Millisecond {
		t.Fatalf("first post-reset failure delay = %v, want within the base", d)
	}
}
