package cde

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"livedev/internal/core"
	"livedev/internal/dyn"
)

// calcClass builds a one-method class, pre-aged by renames so its
// descriptor version is distinguishable across incarnations.
func calcClass(t *testing.T, renames int) *dyn.Class {
	t.Helper()
	c := dyn.NewClass("Calc")
	id, err := c.AddMethod(dyn.MethodSpec{
		Name: "op", Result: dyn.Int32T, Distributed: true,
		Body: func(_ *dyn.Instance, _ []dyn.Value) (dyn.Value, error) {
			return dyn.Int32Value(7), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < renames; i++ {
		if err := c.RenameMethod(id, fmt.Sprintf("tmp%d", i)); err != nil {
			t.Fatal(err)
		}
		if err := c.RenameMethod(id, "op"); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// startCalcManager starts a manager serving Calc over SOAP on the given
// interface address ("127.0.0.1:0" for fresh) with an optional data dir.
func startCalcManager(t *testing.T, ifaceAddr, dataDir string, renames int) (*core.Manager, core.Server) {
	t.Helper()
	mgr, err := core.NewManager(core.Config{InterfaceAddr: ifaceAddr, Timeout: time.Hour, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := mgr.Register(calcClass(t, renames), core.TechSOAP)
	if err != nil {
		_ = mgr.Close()
		t.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		_ = mgr.Close()
		t.Fatal(err)
	}
	srv.Publisher().PublishNow()
	srv.Publisher().WaitIdle()
	return mgr, srv
}

// TestNoteRestartSignals pins the restart detector's truth table —
// including the epoch-overtake blind spot: a state-loss incarnation whose
// store-wide epoch has already passed the client's (path-scoped) epoch
// cursor is still recognized by its regressed document version.
func TestNoteRestartSignals(t *testing.T) {
	cases := []struct {
		name string
		cur  DocVersions
		got  DocVersions
		want bool
	}{
		{"durable restart, versions continue",
			DocVersions{Doc: 5, Epoch: 9, Generation: 1}, DocVersions{Doc: 6, Epoch: 10, Generation: 2}, false},
		{"same generation, journal eviction",
			DocVersions{Doc: 5, Epoch: 9, Generation: 1}, DocVersions{Doc: 3, Epoch: 4, Generation: 1}, false},
		{"state loss, epoch regressed",
			DocVersions{Doc: 5, Epoch: 9, Generation: 1}, DocVersions{Doc: 1, Epoch: 2, Generation: 2}, true},
		{"state loss, epoch overtook but doc regressed",
			DocVersions{Doc: 5, Epoch: 9, Generation: 1}, DocVersions{Doc: 1, Epoch: 12, Generation: 2}, true},
		{"old server without the header",
			DocVersions{Doc: 5, Epoch: 9, Generation: 0}, DocVersions{Doc: 1, Epoch: 2, Generation: 0}, false},
	}
	for _, tc := range cases {
		c := &Client{viewChanged: make(chan struct{})}
		c.versions = tc.cur
		if got := c.noteRestart(tc.got); got != tc.want {
			t.Errorf("%s: noteRestart(%+v) with view %+v = %v, want %v", tc.name, tc.got, tc.cur, got, tc.want)
		}
	}
}

// TestWatchClientRidesDurableRestart: a WithWatch client follows its
// server through a full restart over the same data dir. The restarted
// store resumes the epoch sequence, so the reconnect is served from
// journal replay: the client's view converges on the new incarnation's
// interface with zero extra document fetches, and no restart (state-loss)
// event is recorded — a durable restart is ordinary catch-up.
func TestWatchClientRidesDurableRestart(t *testing.T) {
	dir := t.TempDir()
	mgr1, srv1 := startCalcManager(t, "127.0.0.1:0", dir, 0)
	ifaceAddr := strings.TrimPrefix(mgr1.InterfaceBaseURL(), "http://")
	url := srv1.InterfaceURL()

	ctx := context.Background()
	c, err := Dial(ctx, url, &DialOptions{Watch: true})
	if err != nil {
		_ = mgr1.Close()
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if _, err := c.CallContext(ctx, "op"); err != nil {
		t.Fatalf("pre-restart call: %v", err)
	}
	preVersions := c.Versions()
	if preVersions.Generation == 0 {
		t.Fatal("client saw no store generation; the durable store must serve one")
	}

	// Restart: manager down (streams break, the published doc retires into
	// the durable store), then a new incarnation over the same dir and
	// address, republishing a further-evolved interface.
	if err := mgr1.Close(); err != nil {
		t.Fatal(err)
	}
	mgr2, srv2 := startCalcManager(t, ifaceAddr, dir, 2)
	defer func() { _ = mgr2.Close() }()
	_ = srv2

	// The client's reconnect must converge on the new incarnation's view.
	deadline := time.Now().Add(15 * time.Second)
	for {
		v := c.Versions()
		if v.Doc > preVersions.Doc && v.Generation == preVersions.Generation+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client stuck at %+v (pre-restart %+v)", v, preVersions)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v := c.Versions(); v.Epoch <= preVersions.Epoch {
		t.Errorf("post-restart epoch %d must strictly continue past %d", v.Epoch, preVersions.Epoch)
	}
	st := c.Stats()
	if st.Refreshes != 1 {
		t.Errorf("stats = %+v: durable-restart catch-up must not refetch the document (want exactly the initial fetch)", st)
	}
	if st.Replays == 0 {
		t.Errorf("stats = %+v: the reconnect should have been served from journal replay", st)
	}
	if st.Restarts != 0 {
		t.Errorf("stats = %+v: a durable restart (epochs intact) must not count as a state-loss restart", st)
	}
	if _, err := c.CallContext(ctx, "op"); err != nil {
		t.Fatalf("post-restart call: %v", err)
	}
}

// TestWatchClientRecoversFromStateLossRestart: the server restarts WITHOUT
// its durable state — fresh store, epochs back at zero, a new random
// generation. The client's cursor points at epochs the new incarnation
// will never reach; the generation change paired with the epoch regression
// is the restart signal that forces the (version-regressed) new view in,
// instead of dropping it under the no-backwards rule and wedging forever.
func TestWatchClientRecoversFromStateLossRestart(t *testing.T) {
	mgr1, srv1 := startCalcManager(t, "127.0.0.1:0", "", 3)
	ifaceAddr := strings.TrimPrefix(mgr1.InterfaceBaseURL(), "http://")
	url := srv1.InterfaceURL()

	// Age the published document with real edits so the fresh
	// incarnation's versions clearly regress.
	for i := 0; i < 3; i++ {
		if _, err := srv1.Class().AddMethod(dyn.MethodSpec{
			Name: fmt.Sprintf("extra%d", i), Result: dyn.Int32T, Distributed: true,
			Body: func(_ *dyn.Instance, _ []dyn.Value) (dyn.Value, error) {
				return dyn.Int32Value(0), nil
			},
		}); err != nil {
			t.Fatal(err)
		}
		srv1.Publisher().PublishNow()
		srv1.Publisher().WaitIdle()
	}

	ctx := context.Background()
	c, err := Dial(ctx, url, &DialOptions{Watch: true})
	if err != nil {
		_ = mgr1.Close()
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	preVersions := c.Versions()
	if preVersions.Doc < 2 {
		t.Fatalf("pre-restart doc version = %d, want an aged document", preVersions.Doc)
	}

	if err := mgr1.Close(); err != nil {
		t.Fatal(err)
	}
	mgr2, _ := startCalcManager(t, ifaceAddr, "", 0)
	defer func() { _ = mgr2.Close() }()

	// The client must adopt the new incarnation's view even though its
	// document version and epoch regressed.
	deadline := time.Now().Add(15 * time.Second)
	for {
		v := c.Versions()
		if v.Generation != 0 && v.Generation != preVersions.Generation {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client stuck on the dead incarnation's view %+v", c.Versions())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v := c.Versions(); v.Doc >= preVersions.Doc {
		t.Errorf("new incarnation's doc version = %d, expected a regression below %d (fresh store)", v.Doc, preVersions.Doc)
	}
	if st := c.Stats(); st.Restarts == 0 {
		t.Errorf("stats = %+v: the state-loss restart should have been counted", st)
	}
	if _, err := c.CallContext(ctx, "op"); err != nil {
		t.Fatalf("post-restart call: %v", err)
	}
}
