package cde

import (
	"context"
	"errors"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"livedev/internal/ifsvr"
)

// The shared document transport: cleartext HTTP/2 with per-host HTTP/1.1
// fallback.
//
// Go's client-side h2c is prior-knowledge only — a Transport configured
// for UnencryptedHTTP2 sends the h2 preface immediately and cannot
// negotiate down — so speaking h2c to servers while staying compatible
// with plain-HTTP/1.1 ones needs per-host discovery. Probing with the h2
// preface is out: an HTTP/1.1 server parses the preface as a junk
// "PRI * HTTP/2.0" request-line that its handler observes, so every
// fetch against a plain server would make the handler see two requests.
// Instead the first request to an unknown host rides HTTP/1.1 — always
// safe — and this system's h2c-capable listeners advertise themselves on
// their HTTP/1.1 responses (ifsvr.H2CHeader, the Alt-Svc idea): an
// advertising host is pinned to h2c for every later request, a silent
// one to HTTP/1.1. A pinned-h2 host whose request later fails has its
// verdict cleared so the next request re-discovers (covering a server
// downgraded across a restart).
//
// The first request to an unknown host scouts alone; concurrent requests
// to that host wait for its verdict instead of racing their own dials.
// That matters beyond politeness: http.Transport has no dial
// singleflight, so N simultaneous first-requests would open N TCP
// connections even though one HTTP/2 connection could carry all N
// streams. Once a verdict exists the shared connection sits in the idle
// pool (HTTP/2 conns are handed out without being removed from it) and
// every follow-up request multiplexes onto it.
//
// Every TCP connection either inner transport dials is counted per host
// (HTTPDials / HTTPConnStats), so "N watchers share one connection" is a
// test-assertable claim rather than an eyeballed one — the HTTP-side
// analogue of IIOPPoolStats.

// docTransportTuning applies the shared keep-alive pool sizing both inner
// transports (h2c and HTTP/1.1) use, with the dial hook that feeds the
// per-host connection counters.
func docTransportTuning(t *http.Transport) *http.Transport {
	t.MaxIdleConnsPerHost = 16
	t.ReadBufferSize = 1 << 16
	t.WriteBufferSize = 1 << 16
	dial := (&net.Dialer{Timeout: 30 * time.Second, KeepAlive: 30 * time.Second}).DialContext
	t.DialContext = func(ctx context.Context, network, addr string) (net.Conn, error) {
		c, err := dial(ctx, network, addr)
		if err == nil {
			countDial(addr)
		}
		return c, err
	}
	return t
}

// newDocTransport builds the probing transport sharedDocClient rides.
func newDocTransport() http.RoundTripper {
	h1 := docTransportTuning(http.DefaultTransport.(*http.Transport).Clone())
	// TLS endpoints negotiate h2 the standard way (ALPN); the probe only
	// exists for cleartext.
	h1.ForceAttemptHTTP2 = true

	h2 := docTransportTuning(http.DefaultTransport.(*http.Transport).Clone())
	var p http.Protocols
	p.SetUnencryptedHTTP2(true)
	h2.Protocols = &p
	// One multiplexed connection per host is the whole point; without the
	// cap, N simultaneous requests that find no established conn each
	// race their own dial instead of queueing for the first.
	h2.MaxConnsPerHost = 1
	h2.HTTP2 = &http.HTTP2Config{
		MaxConcurrentStreams:          512,
		MaxReceiveBufferPerConnection: 1 << 20,
		MaxReceiveBufferPerStream:     1 << 18,
	}
	return &h2cProbeTransport{
		h1:       h1,
		h2:       h2,
		verdicts: make(map[string]bool),
		probes:   make(map[string]chan struct{}),
	}
}

// h2cProbeTransport discovers per host whether cleartext HTTP/2 is
// spoken: the first request scouts over HTTP/1.1 and reads the server's
// h2c advertisement from the response, pinning the host to h2c or
// HTTP/1.1 for later requests. A pinned-h2 host whose request fails has
// its verdict cleared so the next request re-scouts.
type h2cProbeTransport struct {
	h1, h2 http.RoundTripper

	mu       sync.Mutex
	verdicts map[string]bool          // host -> speaks h2c
	probes   map[string]chan struct{} // host -> in-flight probe; closed on settle
}

func (t *h2cProbeTransport) verdict(host string) (speaksH2, known bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	speaksH2, known = t.verdicts[host]
	return
}

func (t *h2cProbeTransport) record(host string, speaksH2 bool) {
	t.mu.Lock()
	t.verdicts[host] = speaksH2
	t.mu.Unlock()
}

func (t *h2cProbeTransport) forget(host string) {
	t.mu.Lock()
	delete(t.verdicts, host)
	t.mu.Unlock()
}

// acquireProbe resolves how a request to host should proceed. It returns
// the cached verdict when one exists; otherwise the first caller becomes
// the scout (probe=true) and everyone else blocks until that scout
// settles, then re-checks. A settled scout that recorded no verdict (host
// unreachable) promotes the next waiter to scout, so retries keep
// discovering without ever stampeding.
func (t *h2cProbeTransport) acquireProbe(ctx context.Context, host string) (speaksH2, probe bool, err error) {
	for {
		t.mu.Lock()
		if v, known := t.verdicts[host]; known {
			t.mu.Unlock()
			return v, false, nil
		}
		ch := t.probes[host]
		if ch == nil {
			t.probes[host] = make(chan struct{})
			t.mu.Unlock()
			return false, true, nil
		}
		t.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return false, false, ctx.Err()
		}
	}
}

// settleProbe releases the waiters parked on host's in-flight probe.
func (t *h2cProbeTransport) settleProbe(host string) {
	t.mu.Lock()
	if ch := t.probes[host]; ch != nil {
		close(ch)
		delete(t.probes, host)
	}
	t.mu.Unlock()
}

// RoundTrip implements http.RoundTripper.
func (t *h2cProbeTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.URL.Scheme != "http" {
		// TLS negotiates h2 via ALPN on the h1 transport's
		// ForceAttemptHTTP2; no cleartext discovery involved.
		return t.h1.RoundTrip(req)
	}
	host := req.URL.Host
	speaksH2, probe, err := t.acquireProbe(req.Context(), host)
	if err != nil {
		return nil, err
	}
	if !probe {
		if speaksH2 {
			return t.roundTripH2(req, host)
		}
		return t.h1.RoundTrip(req)
	}
	// Scout: the request itself rides HTTP/1.1 (correct against any
	// server), and the response's h2c advertisement pins the verdict. A
	// transport-level failure records nothing — a host that is simply
	// down stays unknown and the next request re-scouts.
	defer t.settleProbe(host)
	resp, err := t.h1.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	t.record(host, resp.Header.Get(ifsvr.H2CHeader) == ifsvr.H2CSupported)
	return resp, nil
}

// roundTripH2 sends req over the h2c transport against a host already
// pinned to h2. A non-cancellation failure clears the verdict so the next
// request re-probes — covering a server downgraded across a restart —
// and surfaces the error to the caller's ordinary retry loop.
func (t *h2cProbeTransport) roundTripH2(req *http.Request, host string) (*http.Response, error) {
	resp, err := t.h2.RoundTrip(req)
	if err != nil && req.Context().Err() == nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		t.forget(host)
	}
	return resp, err
}

// Per-host TCP dial counters for the shared document transport.
var (
	dialMu    sync.Mutex
	dialCount = make(map[string]int)
)

func countDial(addr string) {
	dialMu.Lock()
	dialCount[addr]++
	dialMu.Unlock()
}

// HTTPDials reports how many TCP connections the shared document transport
// has dialed to addr (a "host:port") over the process lifetime. With h2c
// multiplexing, N concurrent watch streams to one endpoint should move
// this by one or two, not by N.
func HTTPDials(addr string) int {
	dialMu.Lock()
	defer dialMu.Unlock()
	return dialCount[addr]
}

// HTTPConnStats reports the shared document transport's total dialed
// connections and the number of distinct endpoints dialed — the HTTP-side
// sibling of IIOPPoolStats.
func HTTPConnStats() (dials, hosts int) {
	dialMu.Lock()
	defer dialMu.Unlock()
	for _, n := range dialCount {
		dials += n
	}
	return dials, len(dialCount)
}

// HTTPDialedHosts returns the dialed endpoints, sorted — a debugging aid
// for connection-count assertions.
func HTTPDialedHosts() []string {
	dialMu.Lock()
	defer dialMu.Unlock()
	hosts := make([]string, 0, len(dialCount))
	for h := range dialCount {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	return hosts
}
