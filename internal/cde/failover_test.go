package cde

import (
	"context"
	"fmt"
	neturl "net/url"
	"testing"
	"time"

	"livedev/internal/dyn"
	"livedev/internal/repl"
)

// startFollower replicates the given leader Interface Server and serves
// the replica read-only on a fresh port, returning its base URL.
func startFollower(t *testing.T, leaderURL string) (*repl.Follower, string) {
	t.Helper()
	f, err := repl.OpenFollower(repl.FollowerConfig{Leader: leaderURL, RetryDelay: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	base, err := f.Serve("127.0.0.1:0")
	if err != nil {
		f.Close()
		t.Fatal(err)
	}
	return f, base
}

// awaitReplicated waits until the follower's store serves path at least at
// version want.
func awaitReplicated(t *testing.T, f *repl.Follower, path string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		doc, err := f.Store().Get(path)
		if err == nil && doc.Version >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never replicated %s v%d (err=%v)", path, want, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestWatchClientFailsOverBetweenReplicas: a watch client reads the
// interface document from a read-only replica, with a second replica as a
// fallback endpoint. When its replica dies mid-session, the client's
// stream reconnect rotates to the surviving replica and rides journal
// replay there — the replicas serve the LEADER's restart generation, so
// the endpoint switch is ordinary catch-up, never a state-loss restart
// (Restarts must stay exactly 0).
func TestWatchClientFailsOverBetweenReplicas(t *testing.T) {
	mgr, srv := startCalcManager(t, "127.0.0.1:0", "", 0)
	defer func() { _ = mgr.Close() }()

	u, err := neturl.Parse(srv.InterfaceURL())
	if err != nil {
		t.Fatal(err)
	}
	docPath := u.Path

	fA, baseA := startFollower(t, mgr.InterfaceBaseURL())
	fB, baseB := startFollower(t, mgr.InterfaceBaseURL())
	defer fB.Close()

	awaitReplicated(t, fA, docPath, 1)
	awaitReplicated(t, fB, docPath, 1)

	ctx := context.Background()
	c, err := Dial(ctx, baseA+docPath, &DialOptions{
		Watch:     true,
		Endpoints: []string{baseA, baseB},
	})
	if err != nil {
		fA.Close()
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if _, err := c.CallContext(ctx, "op"); err != nil {
		fA.Close()
		t.Fatalf("call via replica-served interface: %v", err)
	}
	preVersions := c.Versions()
	if preVersions.Generation == 0 {
		t.Fatal("client saw no generation; replicas must relay the leader's")
	}

	// edit publishes one interface evolution on the leader and returns the
	// resulting document version the client must converge to.
	edit := func(i int) uint64 {
		if _, err := srv.Class().AddMethod(dyn.MethodSpec{
			Name: fmt.Sprintf("extra%d", i), Result: dyn.Int32T, Distributed: true,
			Body: func(_ *dyn.Instance, _ []dyn.Value) (dyn.Value, error) {
				return dyn.Int32Value(0), nil
			},
		}); err != nil {
			t.Fatal(err)
		}
		srv.Publisher().PublishNow()
		srv.Publisher().WaitIdle()
		doc, err := mgr.Store().Get(docPath)
		if err != nil {
			t.Fatal(err)
		}
		return doc.Version
	}
	awaitClient := func(want uint64) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for c.Versions().Doc < want {
			if time.Now().After(deadline) {
				t.Fatalf("client stuck at %+v, want doc v%d", c.Versions(), want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Live replication through replica A: leader edit -> A -> client.
	awaitClient(edit(0))

	// Kill replica A mid-session. The client's stream breaks; the
	// reconnect rotates to replica B and catches up there.
	fA.Close()
	v2 := edit(1)
	awaitReplicated(t, fB, docPath, v2)
	awaitClient(v2)

	post := c.Versions()
	if post.Generation != preVersions.Generation {
		t.Errorf("generation changed %d -> %d across failover; replicas must both serve the leader's", preVersions.Generation, post.Generation)
	}
	st := c.Stats()
	if st.Restarts != 0 {
		t.Errorf("stats = %+v: replica failover must not be misread as a state-loss restart", st)
	}
	if st.Reconnects == 0 {
		t.Errorf("stats = %+v: killing the client's replica should have forced at least one reconnect", st)
	}
	if _, err := c.CallContext(ctx, "op"); err != nil {
		t.Fatalf("post-failover call: %v", err)
	}
}
