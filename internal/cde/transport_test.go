package cde

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"livedev/internal/clock"
	"livedev/internal/ifsvr"
)

// TestWatchStreamsShareConnsUnderH2 pins the h2c coalescing claim: N
// concurrent SSE watch streams from one process to one Interface Server
// share at most two TCP connections (one, plus one for the pre-stream
// document fetch racing the pool), instead of one connection per watcher.
func TestWatchStreamsShareConnsUnderH2(t *testing.T) {
	store := ifsvr.NewStore(0, clock.Real{})
	defer store.Close()
	store.Publish("/if/conns.json", "application/json", "{}")
	srv := ifsvr.NewView(store)
	base, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	docURL := base + "/if/conns.json"
	addr := strings.TrimPrefix(base, "http://")

	before := HTTPDials(addr)

	const watchers = 20
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	got := make(chan struct{}, watchers)
	for i := 0; i < watchers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// after=0 with one committed version: the journal replays it
			// immediately, so every stream observes one event and we know
			// all N are connected and served.
			_ = ifsvr.WatchStream(ctx, docClient(nil), docURL, 0, func(ifsvr.StreamEvent) {
				select {
				case got <- struct{}{}:
				default:
				}
			})
		}()
	}
	for i := 0; i < watchers; i++ {
		select {
		case <-got:
		case <-time.After(10 * time.Second):
			t.Fatal("watch streams did not all deliver their replay event")
		}
	}
	cancel()
	wg.Wait()

	if dials := HTTPDials(addr) - before; dials > 2 {
		t.Errorf("%d watch streams dialed %d TCP connections; h2c multiplexing should need at most 2", watchers, dials)
	}
}

// TestDocTransportFallsBackToHTTP11 pins the degrade path: a plain
// HTTP/1.1 server (no h2c advertisement) serves document fetches through
// the shared transport, its handler sees exactly one request per fetch
// (no preface junk, no double execution), and the per-host verdict pins
// later requests to HTTP/1.1.
func TestDocTransportFallsBackToHTTP11(t *testing.T) {
	hits := 0
	h1srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		if r.Method != http.MethodGet {
			t.Errorf("handler saw a %s %s request; discovery must not send anything but the real GET", r.Method, r.URL)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(ifsvr.VersionHeader, "1")
		_, _ = w.Write([]byte(`{"ok":true}`))
	}))
	defer h1srv.Close()

	doc, err := ifsvr.FetchContext(context.Background(), docClient(nil), h1srv.URL+"/doc.json")
	if err != nil {
		t.Fatalf("fetch through the discovering transport against an HTTP/1.1 server: %v", err)
	}
	if doc.Content != `{"ok":true}` || doc.Version != 1 {
		t.Errorf("doc = %+v", doc)
	}
	if hits != 1 {
		t.Errorf("handler executed %d requests for one fetch, want exactly 1", hits)
	}

	u, _ := url.Parse(h1srv.URL)
	if _, err := ifsvr.FetchContext(context.Background(), docClient(nil), h1srv.URL+"/doc.json"); err != nil {
		t.Fatalf("second fetch: %v", err)
	}
	tr, ok := sharedDocClient.Transport.(*h2cProbeTransport)
	if !ok {
		t.Fatalf("sharedDocClient transport is %T, want *h2cProbeTransport", sharedDocClient.Transport)
	}
	if speaksH2, known := tr.verdict(u.Host); !known || speaksH2 {
		t.Errorf("verdict for the HTTP/1.1 host = (h2=%v, known=%v), want pinned to HTTP/1.1", speaksH2, known)
	}
}

// TestDocTransportUpgradesOnAdvertisement pins the upgrade path: an
// h2c-capable listener advertises on its HTTP/1.1 responses, the scout
// request records the verdict, and later requests to the host ride
// cleartext HTTP/2.
func TestDocTransportUpgradesOnAdvertisement(t *testing.T) {
	store := ifsvr.NewStore(0, clock.Real{})
	defer store.Close()
	store.Publish("/if/up.json", "application/json", "{}")
	srv := ifsvr.NewView(store)
	base, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	host := strings.TrimPrefix(base, "http://")

	if _, err := ifsvr.FetchContext(context.Background(), docClient(nil), base+"/if/up.json"); err != nil {
		t.Fatal(err)
	}
	tr := sharedDocClient.Transport.(*h2cProbeTransport)
	if speaksH2, known := tr.verdict(host); !known || !speaksH2 {
		t.Fatalf("verdict after the scout = (h2=%v, known=%v), want pinned to h2c", speaksH2, known)
	}

	// A later request actually rides HTTP/2.
	req, err := http.NewRequest(http.MethodGet, base+"/if/up.json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := sharedDocClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.Proto != "HTTP/2.0" {
		t.Errorf("pinned host answered over %s, want HTTP/2.0", resp.Proto)
	}
}
