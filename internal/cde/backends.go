package cde

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"livedev/internal/dyn"
	"livedev/internal/idl"
	"livedev/internal/ifsvr"
	"livedev/internal/ior"
	"livedev/internal/orb"
	"livedev/internal/soap"
	"livedev/internal/wsdl"
)

// The built-in SOAP and CORBA connectors register themselves so that
// cde.Dial (and livedev.Dial) resolve them by name or document sniffing
// exactly like any third-party binding.
func init() {
	RegisterConnector(Connector{
		Name: "SOAP",
		Match: DocMatch{
			ContentTypes: []string{"text/xml", "application/wsdl+xml"},
			PathSuffixes: []string{".wsdl"},
			Content: func(doc string) bool {
				return strings.Contains(doc, "<definitions") || strings.Contains(doc, ":definitions")
			},
		},
		Connect: func(ctx context.Context, url string, opts *DialOptions) (*Client, error) {
			docs := NewDocSource(url, opts.HTTPClient, opts.Prefetched)
			docs.SetEndpoints(opts.Endpoints)
			return NewClientContext(ctx,
				&soapBackend{docs: docs, httpClient: opts.HTTPClient}, opts)
		},
	})
	RegisterConnector(Connector{
		Name: "CORBA",
		Match: DocMatch{
			ContentTypes: []string{}, // IDL and IORs are published as text/plain, too generic to claim
			PathSuffixes: []string{".idl", ".ior"},
			Content: func(doc string) bool {
				return strings.HasPrefix(doc, "IOR:") || strings.Contains(doc, "interface ")
			},
		},
		Connect: connectCORBA,
	})
}

// connectCORBA accepts either the IDL-document URL or the IOR URL as the
// primary URL; the counterpart comes from opts.AuxURL or, failing that, the
// SDE's publication path convention (/idl/Name.idl <-> /ior/Name.ior).
func connectCORBA(ctx context.Context, url string, opts *DialOptions) (*Client, error) {
	// Classify the primary document the same way the sniffer does: suffix
	// on the query-stripped path, with the fetched content ("IOR:" prefix)
	// as the fallback signal for unconventional URLs.
	path := url
	if i := strings.IndexByte(path, '?'); i >= 0 {
		path = path[:i]
	}
	isIOR := strings.HasSuffix(path, ".ior") ||
		(opts.Prefetched != nil && strings.HasPrefix(opts.Prefetched.Content, "IOR:"))

	idlURL, iorURL := url, opts.AuxURL
	var seedIDL, seedIOR *ifsvr.Document
	if isIOR {
		idlURL, iorURL = opts.AuxURL, url
		if idlURL == "" {
			idlURL = strings.Replace(strings.TrimSuffix(path, ".ior")+".idl", "/ior/", "/idl/", 1)
		}
		seedIOR = opts.Prefetched
	} else {
		if iorURL == "" {
			iorURL = strings.Replace(strings.TrimSuffix(path, ".idl")+".ior", "/idl/", "/ior/", 1)
		}
		seedIDL = opts.Prefetched
	}
	if idlURL == "" || iorURL == "" {
		return nil, errors.New("cde: CORBA binding needs both IDL and IOR URLs")
	}
	b := &corbaBackend{
		idlDocs: NewDocSource(idlURL, opts.HTTPClient, seedIDL),
		iorDocs: NewDocSource(iorURL, opts.HTTPClient, seedIOR),
	}
	b.idlDocs.SetEndpoints(opts.Endpoints)
	b.iorDocs.SetEndpoints(opts.Endpoints)
	return NewClientContext(ctx, b, opts)
}

// soapBackend is the Apache-Axis-equivalent client plumbing: WSDL compiler
// plus SOAP-over-HTTP invocation (paper Figure 1).
type soapBackend struct {
	docs       *DocSource
	httpClient *http.Client

	mu     sync.RWMutex
	caller *soap.Client
}

var _ Backend = (*soapBackend)(nil)

// NewSOAPClient builds a CDE client from the WSDL document published at
// wsdlURL. httpClient may be nil.
func NewSOAPClient(wsdlURL string, httpClient *http.Client) (*Client, error) {
	return NewClientContext(context.Background(),
		&soapBackend{docs: NewDocSource(wsdlURL, httpClient, nil), httpClient: httpClient}, nil)
}

// Technology implements Backend.
func (b *soapBackend) Technology() string { return "SOAP" }

// compile turns a fetched (or pushed) WSDL document into the descriptor and
// retargets the SOAP caller at the advertised endpoint.
func (b *soapBackend) compile(doc ifsvr.Document) (dyn.InterfaceDescriptor, DocVersions, error) {
	parsed, err := wsdl.Parse([]byte(doc.Content))
	if err != nil {
		return dyn.InterfaceDescriptor{}, DocVersions{}, fmt.Errorf("cde: compiling WSDL: %w", err)
	}
	b.mu.Lock()
	b.caller = &soap.Client{
		Endpoint:   parsed.Endpoint,
		ServiceNS:  parsed.TargetNS,
		HTTPClient: b.httpClient,
	}
	b.mu.Unlock()
	return parsed.Descriptor(), DocVersions{Doc: doc.Version, Descriptor: doc.DescriptorVersion, Epoch: doc.Epoch, Generation: doc.Generation}, nil
}

// FetchInterface implements Backend: fetch the WSDL and compile it.
func (b *soapBackend) FetchInterface(ctx context.Context) (dyn.InterfaceDescriptor, DocVersions, error) {
	doc, err := b.docs.Fetch(ctx)
	if err != nil {
		return dyn.InterfaceDescriptor{}, DocVersions{}, err
	}
	return b.compile(doc)
}

// WatchInterface implements WatchableBackend over the Interface Server's
// long-poll watch protocol.
func (b *soapBackend) WatchInterface(ctx context.Context, after uint64) (dyn.InterfaceDescriptor, DocVersions, error) {
	doc, err := b.docs.Watch(ctx, after)
	if err != nil {
		return dyn.InterfaceDescriptor{}, DocVersions{}, err
	}
	return b.compile(doc)
}

// StreamInterface implements StreamingBackend over the Interface Server's
// SSE watch transport.
func (b *soapBackend) StreamInterface(ctx context.Context, afterEpoch uint64, deliver func(InterfaceEvent)) error {
	return b.docs.Stream(ctx, afterEpoch, func(ev ifsvr.StreamEvent) {
		desc, vers, err := b.compile(ev.Doc)
		if err != nil {
			return // a malformed intermediate version; the next event supersedes it
		}
		deliver(InterfaceEvent{Desc: desc, Versions: vers, Replayed: ev.Replayed, Snapshot: ev.Snapshot})
	})
}

// Invoke implements Backend.
func (b *soapBackend) Invoke(ctx context.Context, sig dyn.MethodSig, args []dyn.Value) (dyn.Value, error) {
	b.mu.RLock()
	caller := b.caller
	b.mu.RUnlock()
	if caller == nil {
		return dyn.Value{}, errors.New("cde: SOAP backend not initialized")
	}
	if len(args) != len(sig.Params) {
		return dyn.Value{}, fmt.Errorf("cde: %s takes %d arguments, got %d", sig.Name, len(sig.Params), len(args))
	}
	named := make([]soap.NamedValue, len(args))
	for i, a := range args {
		if !a.Type().Equal(sig.Params[i].Type) {
			return dyn.Value{}, fmt.Errorf("cde: %s parameter %s wants %s, got %s",
				sig.Name, sig.Params[i].Name, sig.Params[i].Type, a.Type())
		}
		named[i] = soap.NamedValue{Name: sig.Params[i].Name, Value: a}
	}
	return caller.CallContext(ctx, sig.Name, named, sig.Result)
}

// IsStale implements Backend.
func (b *soapBackend) IsStale(err error) bool { return soap.IsNonExistentMethod(err) }

// Close implements Backend.
func (b *soapBackend) Close() error { return nil }

// corbaBackend is the OpenORB-DII-equivalent client plumbing: IDL compiler,
// IOR bootstrap, IIOP invocation (paper Figure 2). The IIOP connection is
// drawn from the process-wide endpoint pool, so every backend (and every
// compiled stub) bound to the same published IOR multiplexes one TCP
// connection.
type corbaBackend struct {
	idlDocs *DocSource
	iorDocs *DocSource

	mu      sync.Mutex
	conn    *orb.ClientORB
	release func() error // returns the pooled connection
	iface   string       // interface name from the IOR type id
	// lastGeneration is the store restart generation of the last compiled
	// IDL document. A change means the Interface Server process restarted
	// — whether or not it recovered its durable state, the old ORB socket
	// died with it — which triggers the pool probe below.
	lastGeneration uint64
	// lastDescriptor is the descriptor version of the last compiled IDL
	// document — the legacy restart heuristic: against stores predating
	// the generation header (Generation 0), and for a class server
	// redeployed under a still-running store, a descriptor version moving
	// backwards means the server restarted (a fresh class restarts its
	// edit counter while the document version resumes its sequence), so
	// the pooled connection is probed and, if dead, evicted — the next
	// call must not burn a round-trip on the dead socket.
	lastDescriptor uint64
}

var _ Backend = (*corbaBackend)(nil)

// NewCORBAClient builds a CDE client from the CORBA-IDL document and
// stringified IOR published at the given URLs. httpClient may be nil.
func NewCORBAClient(idlURL, iorURL string, httpClient *http.Client) (*Client, error) {
	return NewClientContext(context.Background(), &corbaBackend{
		idlDocs: NewDocSource(idlURL, httpClient, nil),
		iorDocs: NewDocSource(iorURL, httpClient, nil),
	}, nil)
}

// Technology implements Backend.
func (b *corbaBackend) Technology() string { return "CORBA" }

// interfaceNameFromTypeID extracts "Calc" from "IDL:CalcModule/Calc:1.0".
func interfaceNameFromTypeID(typeID string) (string, error) {
	s, ok := strings.CutPrefix(typeID, "IDL:")
	if !ok {
		return "", fmt.Errorf("cde: unexpected repository id %q", typeID)
	}
	s, _, ok = strings.Cut(s, ":")
	if !ok {
		return "", fmt.Errorf("cde: unexpected repository id %q", typeID)
	}
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		s = s[i+1:]
	}
	if s == "" {
		return "", fmt.Errorf("cde: unexpected repository id %q", typeID)
	}
	return s, nil
}

// connect dials the server ORB if not yet connected, using the published
// IOR (Figure 2 step 1).
func (b *corbaBackend) connect(ctx context.Context) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.conn != nil {
		return nil
	}
	doc, err := b.iorDocs.Fetch(ctx)
	if err != nil {
		return err
	}
	ref, err := ior.ParseString(doc.Content)
	if err != nil {
		return fmt.Errorf("cde: parsing IOR: %w", err)
	}
	name, err := interfaceNameFromTypeID(ref.TypeID)
	if err != nil {
		return err
	}
	conn, release, err := sharedORBs.acquire(ctx, ref)
	if err != nil {
		return fmt.Errorf("cde: initializing client ORB: %w", err)
	}
	b.conn = conn
	b.release = release
	b.iface = name
	return nil
}

// compile turns a fetched (or pushed) IDL document into the descriptor.
// A restart-generation change across compilations — or, against servers
// predating the generation header and for class redeployments under a
// still-running store, a descriptor version moving backwards — is the
// server-restart signal: the pooled IIOP connection is probed and, if
// dead, evicted immediately instead of on the next failing call.
func (b *corbaBackend) compile(doc ifsvr.Document) (dyn.InterfaceDescriptor, DocVersions, error) {
	parsed, err := idl.Parse(doc.Content)
	if err != nil {
		return dyn.InterfaceDescriptor{}, DocVersions{}, fmt.Errorf("cde: compiling IDL: %w", err)
	}
	b.mu.Lock()
	name := b.iface
	restarted := doc.DescriptorVersion < b.lastDescriptor ||
		(doc.Generation != 0 && b.lastGeneration != 0 && doc.Generation != b.lastGeneration)
	b.mu.Unlock()
	if restarted {
		// Probe before anything can fail below: the signal must not be lost
		// to an unresolvable intermediate document. A false alarm costs
		// nothing — a live connection survives the probe.
		b.evictRestartedConn()
	}
	desc, err := idl.Resolve(parsed, name)
	if err != nil {
		return dyn.InterfaceDescriptor{}, DocVersions{}, fmt.Errorf("cde: resolving IDL: %w", err)
	}
	b.mu.Lock()
	b.lastDescriptor = doc.DescriptorVersion
	b.lastGeneration = doc.Generation
	b.mu.Unlock()
	return desc, DocVersions{Doc: doc.Version, Descriptor: doc.DescriptorVersion, Epoch: doc.Epoch, Generation: doc.Generation}, nil
}

// evictRestartedConn probes the backend's pooled IIOP connection after a
// generation-change signal. If the socket is dead it is dropped from the
// endpoint pool (so sibling Dials re-dial too), this backend releases its
// hold, and the next Invoke reconnects from the freshly published IOR. A
// false alarm — the connection still alive — costs nothing.
func (b *corbaBackend) evictRestartedConn() {
	b.mu.Lock()
	conn, release := b.conn, b.release
	b.mu.Unlock()
	if conn == nil || !conn.Broken() {
		return
	}
	sharedORBs.evictBroken(conn)
	b.mu.Lock()
	if b.conn != conn {
		// A concurrent reconnect already replaced it; leave the new one be.
		b.mu.Unlock()
		return
	}
	b.conn, b.release = nil, nil
	b.mu.Unlock()
	_ = release()
}

// FetchInterface implements Backend: fetch and compile the CORBA-IDL
// document (Figure 2's IDL compiler).
func (b *corbaBackend) FetchInterface(ctx context.Context) (dyn.InterfaceDescriptor, DocVersions, error) {
	if err := b.connect(ctx); err != nil {
		return dyn.InterfaceDescriptor{}, DocVersions{}, err
	}
	doc, err := b.idlDocs.Fetch(ctx)
	if err != nil {
		return dyn.InterfaceDescriptor{}, DocVersions{}, err
	}
	return b.compile(doc)
}

// WatchInterface implements WatchableBackend by watching the published IDL
// document.
func (b *corbaBackend) WatchInterface(ctx context.Context, after uint64) (dyn.InterfaceDescriptor, DocVersions, error) {
	if err := b.connect(ctx); err != nil {
		return dyn.InterfaceDescriptor{}, DocVersions{}, err
	}
	doc, err := b.idlDocs.Watch(ctx, after)
	if err != nil {
		return dyn.InterfaceDescriptor{}, DocVersions{}, err
	}
	return b.compile(doc)
}

// StreamInterface implements StreamingBackend by streaming the published
// IDL document.
func (b *corbaBackend) StreamInterface(ctx context.Context, afterEpoch uint64, deliver func(InterfaceEvent)) error {
	if err := b.connect(ctx); err != nil {
		return err
	}
	return b.idlDocs.Stream(ctx, afterEpoch, func(ev ifsvr.StreamEvent) {
		desc, vers, err := b.compile(ev.Doc)
		if err != nil {
			return // a malformed intermediate version; the next event supersedes it
		}
		deliver(InterfaceEvent{Desc: desc, Versions: vers, Replayed: ev.Replayed, Snapshot: ev.Snapshot})
	})
}

// Invoke implements Backend via DII. A backend whose pooled connection was
// evicted after a server restart reconnects here, from the freshly
// published IOR.
func (b *corbaBackend) Invoke(ctx context.Context, sig dyn.MethodSig, args []dyn.Value) (dyn.Value, error) {
	b.mu.Lock()
	conn := b.conn
	b.mu.Unlock()
	if conn == nil {
		if err := b.connect(ctx); err != nil {
			return dyn.Value{}, err
		}
		b.mu.Lock()
		conn = b.conn
		b.mu.Unlock()
	}
	return conn.InvokeContext(ctx, sig, args)
}

// IsStale implements Backend.
func (b *corbaBackend) IsStale(err error) bool {
	return errors.Is(err, orb.ErrNonExistentMethod)
}

// Close implements Backend: the pooled connection is released, not closed —
// it is torn down when the last holder lets go.
func (b *corbaBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.conn == nil {
		return nil
	}
	err := b.release()
	b.conn = nil
	b.release = nil
	return err
}
