package cde

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"livedev/internal/ifsvr"
)

// DialOptions carries the cross-technology knobs of a Dial. The zero value
// is usable; the livedev facade builds one from functional options.
type DialOptions struct {
	// HTTPClient is used for interface-document fetches and (by HTTP-based
	// bindings) for calls. Nil means a default client.
	HTTPClient *http.Client
	// Timeout, when non-zero, bounds every call made through the resulting
	// client whose context carries no deadline of its own.
	Timeout time.Duration
	// Binding forces the named binding, skipping document sniffing.
	Binding string
	// Watch subscribes the client to push-based interface updates: a
	// watcher long-polls the published interface document and installs
	// each new version into the client's view, so reactive refresh after a
	// live edit is served from the invalidated cache instead of a per-call
	// refetch. Requires the binding's backend to implement
	// WatchableBackend; Dial fails otherwise.
	Watch bool
	// AuxURL is a binding-specific secondary document URL — the CORBA
	// binding uses it for the stringified IOR when the primary URL is the
	// IDL document (and vice versa). Bindings derive it by path convention
	// when empty.
	AuxURL string
	// Prompt, when non-nil, is installed as the client debugger's hook:
	// it is invoked synchronously for every recorded stale-call exception.
	Prompt func(Exception)
	// Prefetched, when non-nil, is the document already fetched from the
	// primary URL — Dial's sniffing fetch sets it so the chosen
	// connector's backend can seed its initial interface compilation
	// instead of re-fetching the same document.
	Prefetched *ifsvr.Document
}

// DocMatch describes how a binding's published interface documents can be
// recognized, so Dial can pick a binding from the document alone.
type DocMatch struct {
	// ContentTypes lists MIME types (without parameters) the binding's
	// interface documents are served with.
	ContentTypes []string
	// PathSuffixes lists URL path suffixes, e.g. ".wsdl", ".idl", ".json".
	PathSuffixes []string
	// Content reports whether the raw document text looks like this
	// binding's interface description — the tie-breaker when types and
	// suffixes are ambiguous.
	Content func(doc string) bool
}

// ConnectFunc builds a live client from an interface-document URL.
type ConnectFunc func(ctx context.Context, url string, opts *DialOptions) (*Client, error)

// Connector is the client half of an RMI-technology binding: how to
// recognize its interface documents and how to connect from one.
type Connector struct {
	// Name is the binding name ("SOAP", "CORBA", "JSON", ...).
	Name string
	// Match describes the binding's interface documents.
	Match DocMatch
	// Connect builds the client.
	Connect ConnectFunc
}

var (
	connMu     sync.RWMutex
	connectors = make(map[string]Connector)
)

// RegisterConnector adds (or replaces) a connector in the process-wide
// registry. It is typically called via livedev.RegisterBinding.
func RegisterConnector(c Connector) {
	if c.Name == "" || c.Connect == nil {
		panic("cde: connector needs a name and a Connect func")
	}
	connMu.Lock()
	connectors[c.Name] = c
	connMu.Unlock()
}

// LookupConnector returns the named connector.
func LookupConnector(name string) (Connector, bool) {
	connMu.RLock()
	defer connMu.RUnlock()
	c, ok := connectors[name]
	return c, ok
}

// ConnectorNames returns the registered binding names, sorted.
func ConnectorNames() []string {
	connMu.RLock()
	names := make([]string, 0, len(connectors))
	for n := range connectors {
		names = append(names, n)
	}
	connMu.RUnlock()
	sort.Strings(names)
	return names
}

// DocSource fetches one published interface document, optionally seeded
// with a prefetched copy (Dial's sniffing fetch) that is consumed exactly
// once — backends use it so connection establishment fetches each document
// a single time. Safe for concurrent use.
type DocSource struct {
	url string
	hc  *http.Client

	mu   sync.Mutex
	seed *ifsvr.Document
}

// NewDocSource returns a source for url. seed may be nil.
func NewDocSource(url string, hc *http.Client, seed *ifsvr.Document) *DocSource {
	return &DocSource{url: url, hc: hc, seed: seed}
}

// URL returns the document URL.
func (s *DocSource) URL() string { return s.url }

// Fetch returns the seeded document on the first call that finds one, and
// fetches over HTTP otherwise.
func (s *DocSource) Fetch(ctx context.Context) (ifsvr.Document, error) {
	s.mu.Lock()
	seed := s.seed
	s.seed = nil
	s.mu.Unlock()
	if seed != nil {
		return *seed, nil
	}
	return ifsvr.FetchContext(ctx, docClient(s.hc), s.url)
}

// Watch performs one blocking watch for a version of the document newer
// than after, using the shared document client when none was configured.
func (s *DocSource) Watch(ctx context.Context, after uint64) (ifsvr.Document, error) {
	return ifsvr.WatchNewer(ctx, docClient(s.hc), s.url, after)
}

// Stream holds one streaming watch on the document, delivering every
// version committed after the given store epoch (replayed catch-up first,
// then live pushes) until ctx ends or the connection breaks.
func (s *DocSource) Stream(ctx context.Context, afterEpoch uint64, fn func(ifsvr.StreamEvent)) error {
	return ifsvr.WatchStream(ctx, docClient(s.hc), s.url, afterEpoch, fn)
}

// Dial builds a live client from a published interface-document URL. Unless
// opts.Binding names a binding explicitly, the document is fetched once and
// each registered connector's DocMatch is scored against it — content type,
// then path suffix, then content sniff — and the best match connects. When
// opts.Timeout is set and ctx carries no deadline of its own, the whole
// connection establishment (sniff fetch, binding connect, initial interface
// fetch) is bounded by it, the same way later calls are.
func Dial(ctx context.Context, url string, opts *DialOptions) (*Client, error) {
	if opts == nil {
		opts = &DialOptions{}
	}
	if opts.Timeout > 0 {
		if _, hasDeadline := ctx.Deadline(); !hasDeadline {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
			defer cancel()
		}
	}
	if opts.Binding != "" {
		c, ok := LookupConnector(opts.Binding)
		if !ok {
			return nil, fmt.Errorf("cde: no binding named %q registered (have %s)",
				opts.Binding, strings.Join(ConnectorNames(), ", "))
		}
		return c.Connect(ctx, url, opts)
	}

	doc, err := ifsvr.FetchContext(ctx, docClient(opts.HTTPClient), url)
	if err != nil {
		return nil, fmt.Errorf("cde: fetching interface document: %w", err)
	}
	c, err := matchConnector(url, doc)
	if err != nil {
		return nil, err
	}
	// Copy before attaching the document: a caller-owned options struct
	// must not carry this fetch into an unrelated later Dial.
	seeded := *opts
	seeded.Prefetched = &doc
	return c.Connect(ctx, url, &seeded)
}

// matchConnector scores every registered connector against the fetched
// document and returns the unique best match.
func matchConnector(url string, doc ifsvr.Document) (Connector, error) {
	contentType := doc.ContentType
	if i := strings.IndexByte(contentType, ';'); i >= 0 {
		contentType = contentType[:i]
	}
	contentType = strings.TrimSpace(contentType)
	path := url
	if i := strings.IndexByte(path, '?'); i >= 0 {
		path = path[:i]
	}

	connMu.RLock()
	candidates := make([]Connector, 0, len(connectors))
	for _, c := range connectors {
		candidates = append(candidates, c)
	}
	connMu.RUnlock()

	var best Connector
	bestScore, ties := 0, 0
	for _, c := range candidates {
		score := 0
		for _, ct := range c.Match.ContentTypes {
			if strings.EqualFold(ct, contentType) {
				score += 4
				break
			}
		}
		for _, suf := range c.Match.PathSuffixes {
			if strings.HasSuffix(path, suf) {
				score += 2
				break
			}
		}
		if c.Match.Content != nil && c.Match.Content(doc.Content) {
			score++
		}
		switch {
		case score > bestScore:
			best, bestScore, ties = c, score, 1
		case score == bestScore && score > 0:
			ties++
		}
	}
	if bestScore == 0 {
		return Connector{}, fmt.Errorf("cde: no registered binding recognizes the document at %s (content type %q; registered: %s)",
			url, doc.ContentType, strings.Join(ConnectorNames(), ", "))
	}
	if ties > 1 {
		return Connector{}, fmt.Errorf("cde: document at %s is ambiguous between %d bindings; use an explicit binding option",
			url, ties)
	}
	return best, nil
}
