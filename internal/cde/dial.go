package cde

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	neturl "net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"livedev/internal/backoff"
	"livedev/internal/ifsvr"
)

// DialOptions carries the cross-technology knobs of a Dial. The zero value
// is usable; the livedev facade builds one from functional options.
type DialOptions struct {
	// HTTPClient is used for interface-document fetches and (by HTTP-based
	// bindings) for calls. Nil means a default client.
	HTTPClient *http.Client
	// Timeout, when non-zero, bounds every call made through the resulting
	// client whose context carries no deadline of its own.
	Timeout time.Duration
	// Binding forces the named binding, skipping document sniffing.
	Binding string
	// Watch subscribes the client to push-based interface updates: a
	// watcher long-polls the published interface document and installs
	// each new version into the client's view, so reactive refresh after a
	// live edit is served from the invalidated cache instead of a per-call
	// refetch. Requires the binding's backend to implement
	// WatchableBackend; Dial fails otherwise.
	Watch bool
	// AuxURL is a binding-specific secondary document URL — the CORBA
	// binding uses it for the stringified IOR when the primary URL is the
	// IDL document (and vice versa). Bindings derive it by path convention
	// when empty.
	AuxURL string
	// Prompt, when non-nil, is installed as the client debugger's hook:
	// it is invoked synchronously for every recorded stale-call exception.
	Prompt func(Exception)
	// Prefetched, when non-nil, is the document already fetched from the
	// primary URL — Dial's sniffing fetch sets it so the chosen
	// connector's backend can seed its initial interface compilation
	// instead of re-fetching the same document.
	Prefetched *ifsvr.Document
	// Endpoints lists replica base URLs (a replicated watch plane's
	// leader and followers) serving the same documents as the primary
	// URL. Document fetches, watch polls, and watch streams rotate to the
	// next endpoint when the current one fails — replica failover,
	// client-side. Since every replica serves the leader's store
	// generation and epochs, the switch is an ordinary
	// reconnect-with-replay, not a restart.
	Endpoints []string
	// DirectorURL names a fronting director whose /.replicas endpoint
	// list is fetched at Dial time and merged into Endpoints.
	DirectorURL string
}

// DocMatch describes how a binding's published interface documents can be
// recognized, so Dial can pick a binding from the document alone.
type DocMatch struct {
	// ContentTypes lists MIME types (without parameters) the binding's
	// interface documents are served with.
	ContentTypes []string
	// PathSuffixes lists URL path suffixes, e.g. ".wsdl", ".idl", ".json".
	PathSuffixes []string
	// Content reports whether the raw document text looks like this
	// binding's interface description — the tie-breaker when types and
	// suffixes are ambiguous.
	Content func(doc string) bool
}

// ConnectFunc builds a live client from an interface-document URL.
type ConnectFunc func(ctx context.Context, url string, opts *DialOptions) (*Client, error)

// Connector is the client half of an RMI-technology binding: how to
// recognize its interface documents and how to connect from one.
type Connector struct {
	// Name is the binding name ("SOAP", "CORBA", "JSON", ...).
	Name string
	// Match describes the binding's interface documents.
	Match DocMatch
	// Connect builds the client.
	Connect ConnectFunc
}

var (
	connMu     sync.RWMutex
	connectors = make(map[string]Connector)
)

// RegisterConnector adds (or replaces) a connector in the process-wide
// registry. It is typically called via livedev.RegisterBinding.
func RegisterConnector(c Connector) {
	if c.Name == "" || c.Connect == nil {
		panic("cde: connector needs a name and a Connect func")
	}
	connMu.Lock()
	connectors[c.Name] = c
	connMu.Unlock()
}

// LookupConnector returns the named connector.
func LookupConnector(name string) (Connector, bool) {
	connMu.RLock()
	defer connMu.RUnlock()
	c, ok := connectors[name]
	return c, ok
}

// ConnectorNames returns the registered binding names, sorted.
func ConnectorNames() []string {
	connMu.RLock()
	names := make([]string, 0, len(connectors))
	for n := range connectors {
		names = append(names, n)
	}
	connMu.RUnlock()
	sort.Strings(names)
	return names
}

// DocSource fetches one published interface document, optionally seeded
// with a prefetched copy (Dial's sniffing fetch) that is consumed exactly
// once — backends use it so connection establishment fetches each document
// a single time. Safe for concurrent use.
type DocSource struct {
	url string
	hc  *http.Client

	// bo paces retries once every endpoint in the rotation has failed:
	// capped jittered exponential backoff, reset by the next success, so a
	// client whose endpoints all die makes O(log) dials per second instead
	// of spinning hot through failOver. waits counts the sleeps it caused.
	bo    backoff.Backoff
	waits atomic.Uint64

	mu    sync.Mutex
	seed  *ifsvr.Document
	bases []string // replica endpoints; rotation target on failure
	cur   int
}

// NewDocSource returns a source for url. seed may be nil.
func NewDocSource(url string, hc *http.Client, seed *ifsvr.Document) *DocSource {
	return &DocSource{url: url, hc: hc, seed: seed}
}

// URL returns the document URL.
func (s *DocSource) URL() string { return s.url }

// SetEndpoints installs the replica endpoint list the source may rotate
// across (DialOptions.Endpoints). Empty is a no-op: the source stays
// pinned to its URL.
func (s *DocSource) SetEndpoints(bases []string) {
	if len(bases) == 0 {
		return
	}
	s.mu.Lock()
	s.bases = append([]string(nil), bases...)
	s.mu.Unlock()
}

// currentURL resolves the document URL against the currently selected
// endpoint: the path and query stay, the scheme and host come from the
// endpoint base.
func (s *DocSource) currentURL() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.bases) == 0 {
		return s.url
	}
	u, err := neturl.Parse(s.url)
	b, berr := neturl.Parse(s.bases[s.cur%len(s.bases)])
	if err != nil || berr != nil || b.Host == "" {
		return s.url
	}
	u.Scheme = b.Scheme
	u.Host = b.Host
	return u.String()
}

// failOver rotates to the next endpoint after a failure on the current
// one (no-op without an endpoint list) and records the failure in the
// source's backoff streak.
func (s *DocSource) failOver() {
	s.mu.Lock()
	if len(s.bases) > 0 {
		s.cur++
	}
	s.mu.Unlock()
	s.bo.Fail()
}

// rotation is the number of distinct endpoints a failure streak must
// cover before pacing kicks in: a single replica loss fails over
// immediately; pacing starts only once the whole rotation has failed.
func (s *DocSource) rotation() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.bases) > 1 {
		return len(s.bases)
	}
	return 1
}

// pace sleeps out the source's current backoff delay — but only when the
// failure streak already spans the whole endpoint rotation, so plain
// replica failover stays immediate. It returns early (with ctx.Err())
// when ctx ends first.
func (s *DocSource) pace(ctx context.Context) error {
	if s.bo.Streak() < s.rotation() {
		return nil
	}
	d := s.bo.Delay()
	if d <= 0 {
		return nil
	}
	s.waits.Add(1)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Backoffs reports how many backoff sleeps the source has performed —
// each one is a retry that would have been a hot-spin dial without the
// pacing.
func (s *DocSource) Backoffs() uint64 { return s.waits.Load() }

// Fetch returns the seeded document on the first call that finds one, and
// fetches over HTTP otherwise — trying each configured replica endpoint
// in rotation before giving up.
func (s *DocSource) Fetch(ctx context.Context) (ifsvr.Document, error) {
	s.mu.Lock()
	seed := s.seed
	s.seed = nil
	attempts := 1
	if len(s.bases) > 1 {
		attempts = len(s.bases)
	}
	s.mu.Unlock()
	if seed != nil {
		return *seed, nil
	}
	if err := s.pace(ctx); err != nil {
		return ifsvr.Document{}, err
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		doc, err := ifsvr.FetchContext(ctx, docClient(s.hc), s.currentURL())
		if err == nil {
			s.bo.Reset()
			return doc, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
		s.failOver()
	}
	return ifsvr.Document{}, lastErr
}

// Watch performs one blocking watch for a version of the document newer
// than after, using the shared document client when none was configured.
// A failed poll rotates the source to the next replica endpoint; the
// caller's retry loop lands there.
func (s *DocSource) Watch(ctx context.Context, after uint64) (ifsvr.Document, error) {
	if err := s.pace(ctx); err != nil {
		return ifsvr.Document{}, err
	}
	d, err := ifsvr.WatchNewer(ctx, docClient(s.hc), s.currentURL(), after)
	switch {
	case err == nil:
		s.bo.Reset()
	case ctx.Err() == nil:
		s.failOver()
	}
	return d, err
}

// Stream holds one streaming watch on the document, delivering every
// version committed after the given store epoch (replayed catch-up first,
// then live pushes) until ctx ends or the connection breaks. A broken
// stream rotates the source to the next replica endpoint — except on
// ErrStreamUnsupported, which must keep pointing at the server that
// answered so the long-poll degrade stays coherent. A stream ended by a
// server drain rotates without counting a failure: the server told us to
// go, so the reconnect to the next replica should be immediate.
func (s *DocSource) Stream(ctx context.Context, afterEpoch uint64, fn func(ifsvr.StreamEvent)) error {
	if err := s.pace(ctx); err != nil {
		return err
	}
	err := ifsvr.WatchStream(ctx, docClient(s.hc), s.currentURL(), afterEpoch, func(ev ifsvr.StreamEvent) {
		// A delivered event proves the endpoint healthy; the next break
		// starts a fresh failure streak.
		s.bo.Reset()
		fn(ev)
	})
	switch {
	case ctx.Err() != nil:
	case errors.Is(err, ifsvr.ErrStreamUnsupported):
		// The server answered (with the long-poll-only protocol): not a
		// failure, and the degrade must keep pointing at it.
		s.bo.Reset()
	case errors.Is(err, ifsvr.ErrStreamDraining):
		s.mu.Lock()
		if len(s.bases) > 0 {
			s.cur++
		}
		s.mu.Unlock()
	default:
		s.failOver()
	}
	return err
}

// Dial builds a live client from a published interface-document URL. Unless
// opts.Binding names a binding explicitly, the document is fetched once and
// each registered connector's DocMatch is scored against it — content type,
// then path suffix, then content sniff — and the best match connects. When
// opts.Timeout is set and ctx carries no deadline of its own, the whole
// connection establishment (sniff fetch, binding connect, initial interface
// fetch) is bounded by it, the same way later calls are.
func Dial(ctx context.Context, url string, opts *DialOptions) (*Client, error) {
	if opts == nil {
		opts = &DialOptions{}
	}
	if opts.Timeout > 0 {
		if _, hasDeadline := ctx.Deadline(); !hasDeadline {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
			defer cancel()
		}
	}
	if opts.DirectorURL != "" {
		resolved, err := resolveDirector(ctx, opts)
		if err != nil {
			return nil, fmt.Errorf("cde: resolving director endpoints: %w", err)
		}
		opts = resolved
	}
	if opts.Binding != "" {
		c, ok := LookupConnector(opts.Binding)
		if !ok {
			return nil, fmt.Errorf("cde: no binding named %q registered (have %s)",
				opts.Binding, strings.Join(ConnectorNames(), ", "))
		}
		return c.Connect(ctx, url, opts)
	}

	doc, err := ifsvr.FetchContext(ctx, docClient(opts.HTTPClient), url)
	if err != nil {
		return nil, fmt.Errorf("cde: fetching interface document: %w", err)
	}
	c, err := matchConnector(url, doc)
	if err != nil {
		return nil, err
	}
	// Copy before attaching the document: a caller-owned options struct
	// must not carry this fetch into an unrelated later Dial.
	seeded := *opts
	seeded.Prefetched = &doc
	return c.Connect(ctx, url, &seeded)
}

// replicaSetWire mirrors the director's /.replicas JSON — kept local so
// the client side does not depend on the replication package.
type replicaSetWire struct {
	Endpoints []struct {
		URL     string `json:"url"`
		Healthy bool   `json:"healthy"`
	} `json:"endpoints"`
}

// resolveDirector fetches the replica endpoint list from the configured
// director and returns a copy of opts with it merged into Endpoints
// (explicit endpoints first, then the director's, deduplicated).
func resolveDirector(ctx context.Context, opts *DialOptions) (*DialOptions, error) {
	url := strings.TrimSuffix(opts.DirectorURL, "/") + "/.replicas"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := docClient(opts.HTTPClient).Do(req)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fetching %s: HTTP %d", url, resp.StatusCode)
	}
	var set replicaSetWire
	if err := json.NewDecoder(resp.Body).Decode(&set); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", url, err)
	}
	merged := append([]string(nil), opts.Endpoints...)
	seen := make(map[string]bool, len(merged))
	for _, ep := range merged {
		seen[ep] = true
	}
	for _, r := range set.Endpoints {
		if r.URL != "" && !seen[r.URL] {
			seen[r.URL] = true
			merged = append(merged, r.URL)
		}
	}
	resolved := *opts
	resolved.Endpoints = merged
	resolved.DirectorURL = ""
	return &resolved, nil
}

// matchConnector scores every registered connector against the fetched
// document and returns the unique best match.
func matchConnector(url string, doc ifsvr.Document) (Connector, error) {
	contentType := doc.ContentType
	if i := strings.IndexByte(contentType, ';'); i >= 0 {
		contentType = contentType[:i]
	}
	contentType = strings.TrimSpace(contentType)
	path := url
	if i := strings.IndexByte(path, '?'); i >= 0 {
		path = path[:i]
	}

	connMu.RLock()
	candidates := make([]Connector, 0, len(connectors))
	for _, c := range connectors {
		candidates = append(candidates, c)
	}
	connMu.RUnlock()

	var best Connector
	bestScore, ties := 0, 0
	for _, c := range candidates {
		score := 0
		for _, ct := range c.Match.ContentTypes {
			if strings.EqualFold(ct, contentType) {
				score += 4
				break
			}
		}
		for _, suf := range c.Match.PathSuffixes {
			if strings.HasSuffix(path, suf) {
				score += 2
				break
			}
		}
		if c.Match.Content != nil && c.Match.Content(doc.Content) {
			score++
		}
		switch {
		case score > bestScore:
			best, bestScore, ties = c, score, 1
		case score == bestScore && score > 0:
			ties++
		}
	}
	if bestScore == 0 {
		return Connector{}, fmt.Errorf("cde: no registered binding recognizes the document at %s (content type %q; registered: %s)",
			url, doc.ContentType, strings.Join(ConnectorNames(), ", "))
	}
	if ties > 1 {
		return Connector{}, fmt.Errorf("cde: document at %s is ambiguous between %d bindings; use an explicit binding option",
			url, ties)
	}
	return best, nil
}
