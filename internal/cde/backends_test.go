package cde

import (
	"context"
	"errors"
	"strings"
	"testing"

	"livedev/internal/dyn"
	"livedev/internal/idl"
	"livedev/internal/ifsvr"
	"livedev/internal/ior"
	"livedev/internal/orb"
	"livedev/internal/wsdl"
)

// startIfsvr publishes the given documents and returns the base URL.
func startIfsvr(t *testing.T, docs map[string]string) string {
	t.Helper()
	s := ifsvr.New()
	for path, content := range docs {
		s.Publish(path, "text/plain", content)
	}
	base, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return base
}

func validWSDL(t *testing.T) string {
	t.Helper()
	c := dyn.NewClass("Svc")
	if _, err := c.AddMethod(dyn.MethodSpec{Name: "op", Result: dyn.Int32T, Distributed: true}); err != nil {
		t.Fatal(err)
	}
	text, err := wsdl.Generate(c.Interface(), "http://127.0.0.1:1/Svc").XML()
	if err != nil {
		t.Fatal(err)
	}
	return text
}

func TestSOAPBackendFetchFailures(t *testing.T) {
	// Unreachable interface server.
	if _, err := NewSOAPClient("http://127.0.0.1:1/wsdl", nil); err == nil {
		t.Error("unreachable WSDL URL should fail")
	}
	// 404.
	base := startIfsvr(t, nil)
	if _, err := NewSOAPClient(base+"/missing.wsdl", nil); err == nil {
		t.Error("missing WSDL should fail")
	}
	// Unparseable WSDL.
	base2 := startIfsvr(t, map[string]string{"/bad.wsdl": "<not-wsdl/>"})
	if _, err := NewSOAPClient(base2+"/bad.wsdl", nil); err == nil {
		t.Error("non-WSDL document should fail")
	}
}

func TestSOAPBackendEndpointUnreachable(t *testing.T) {
	// Valid WSDL advertising a dead endpoint: construction succeeds (the
	// interface is compiled), calls fail cleanly.
	base := startIfsvr(t, map[string]string{"/svc.wsdl": validWSDL(t)})
	client, err := NewSOAPClient(base+"/svc.wsdl", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Call("op"); err == nil {
		t.Error("call to a dead endpoint should fail")
	}
}

func TestSOAPBackendArgChecks(t *testing.T) {
	base := startIfsvr(t, map[string]string{"/svc.wsdl": validWSDL(t)})
	client, err := NewSOAPClient(base+"/svc.wsdl", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// Arity is checked client-side before any network traffic.
	if _, err := client.Call("op", dyn.Int32Value(1)); err == nil {
		t.Error("arity mismatch should fail client-side")
	}
}

func TestSOAPBackendInvokeBeforeFetch(t *testing.T) {
	b := &soapBackend{docs: NewDocSource("http://unused/", nil, nil)}
	if _, err := b.Invoke(context.Background(), dyn.MethodSig{Name: "x"}, nil); err == nil {
		t.Error("invoke before FetchInterface should fail")
	}
	if b.Technology() != "SOAP" {
		t.Error("Technology")
	}
	if err := b.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

func TestCORBABackendFetchFailures(t *testing.T) {
	// Missing IOR document.
	base := startIfsvr(t, nil)
	if _, err := NewCORBAClient(base+"/x.idl", base+"/x.ior", nil); err == nil {
		t.Error("missing IOR should fail")
	}
	// Unparseable IOR.
	base2 := startIfsvr(t, map[string]string{"/x.ior": "garbage"})
	if _, err := NewCORBAClient(base2+"/x.idl", base2+"/x.ior", nil); err == nil {
		t.Error("garbage IOR should fail")
	}
	// IOR with a bad repository id.
	badID := ior.New("NOPREFIX", "127.0.0.1", 1, []byte("k"))
	base3 := startIfsvr(t, map[string]string{"/x.ior": badID.String()})
	if _, err := NewCORBAClient(base3+"/x.idl", base3+"/x.ior", nil); err == nil {
		t.Error("bad repository id should fail")
	}
	// IOR pointing at a dead endpoint.
	deadRef := ior.New("IDL:Mod/Svc:1.0", "127.0.0.1", 1, []byte("k"))
	base4 := startIfsvr(t, map[string]string{"/x.ior": deadRef.String()})
	if _, err := NewCORBAClient(base4+"/x.idl", base4+"/x.ior", nil); err == nil {
		t.Error("dead ORB endpoint should fail")
	}
}

func TestCORBABackendIDLFailures(t *testing.T) {
	// A live ORB endpoint but broken IDL documents.
	class := dyn.NewClass("Svc")
	if _, err := class.AddMethod(dyn.MethodSpec{Name: "op", Result: dyn.Int32T, Distributed: true}); err != nil {
		t.Fatal(err)
	}
	target := &testTarget{in: class.NewInstance()}
	srv := orb.NewServerORB("IDL:SvcModule/Svc:1.0", []byte("svc"), target)
	ref, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// IDL missing entirely.
	base := startIfsvr(t, map[string]string{"/svc.ior": ref.String()})
	if _, err := NewCORBAClient(base+"/svc.idl", base+"/svc.ior", nil); err == nil {
		t.Error("missing IDL should fail")
	}

	// IDL that does not parse.
	base2 := startIfsvr(t, map[string]string{
		"/svc.ior": ref.String(),
		"/svc.idl": "not idl at all {",
	})
	if _, err := NewCORBAClient(base2+"/svc.idl", base2+"/svc.ior", nil); err == nil {
		t.Error("unparseable IDL should fail")
	}

	// IDL whose module lacks the interface the IOR names.
	base3 := startIfsvr(t, map[string]string{
		"/svc.ior": ref.String(),
		"/svc.idl": "module SvcModule { interface Other { void f(); }; };",
	})
	if _, err := NewCORBAClient(base3+"/svc.idl", base3+"/svc.ior", nil); err == nil {
		t.Error("interface mismatch should fail")
	}

	// A correct document set works.
	doc, err := idl.Generate(class.Interface())
	if err != nil {
		t.Fatal(err)
	}
	base4 := startIfsvr(t, map[string]string{
		"/svc.ior": ref.String(),
		"/svc.idl": idl.Print(doc),
	})
	client, err := NewCORBAClient(base4+"/svc.idl", base4+"/svc.ior", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Call("op"); err != nil {
		t.Errorf("valid setup should call: %v", err)
	}
}

func TestCORBABackendInvokeBeforeConnect(t *testing.T) {
	b := &corbaBackend{idlDocs: NewDocSource("http://unused/", nil, nil), iorDocs: NewDocSource("http://unused/", nil, nil)}
	if _, err := b.Invoke(context.Background(), dyn.MethodSig{Name: "x"}, nil); err == nil {
		t.Error("invoke before connect should fail")
	}
	if b.Technology() != "CORBA" {
		t.Error("Technology")
	}
	if err := b.Close(); err != nil {
		t.Errorf("close before connect: %v", err)
	}
}

// testTarget is a minimal DSI target for the failure-injection tests.
type testTarget struct{ in *dyn.Instance }

func (t *testTarget) LookupOperation(op string) (dyn.MethodSig, bool) {
	return t.in.Class().Interface().Lookup(op)
}

func (t *testTarget) InvokeOperation(_ context.Context, op string, args []dyn.Value) (dyn.Value, error) {
	v, err := t.in.InvokeDistributed(op, args...)
	if err != nil && errors.Is(err, dyn.ErrNoBody) {
		// The failure-injection class has no bodies; answer statically so
		// the happy-path assertion can pass.
		if strings.HasPrefix(op, "op") {
			return dyn.Int32Value(7), nil
		}
	}
	return v, err
}

func (t *testTarget) OperationMissing(string) {}
