package cde

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"livedev/internal/core"
	"livedev/internal/dyn"
)

// noWatchBackend is a minimal Backend without the optional watch capability.
type noWatchBackend struct{}

func (noWatchBackend) FetchInterface(context.Context) (dyn.InterfaceDescriptor, DocVersions, error) {
	return dyn.InterfaceDescriptor{ClassName: "X"}, DocVersions{Doc: 1}, nil
}
func (noWatchBackend) Invoke(context.Context, dyn.MethodSig, []dyn.Value) (dyn.Value, error) {
	return dyn.Value{}, errors.New("not implemented")
}
func (noWatchBackend) IsStale(error) bool { return false }
func (noWatchBackend) Technology() string { return "nowatch" }
func (noWatchBackend) Close() error       { return nil }

// TestWatchRequiresCapableBinding: requesting watch against a backend that
// lacks WatchInterface fails at connect time with a telling error.
func TestWatchRequiresCapableBinding(t *testing.T) {
	_, err := NewClientContext(context.Background(), noWatchBackend{}, &DialOptions{Watch: true})
	if err == nil {
		t.Fatal("watch against a non-watchable backend must fail")
	}
	if !strings.Contains(err.Error(), "does not support watch") {
		t.Errorf("error = %v", err)
	}
}

// TestWatchOffKeepsFetchingPath: without the option the same backend
// connects fine and Watching reports false.
func TestWatchOffKeepsFetchingPath(t *testing.T) {
	c, err := NewClientContext(context.Background(), noWatchBackend{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if c.Watching() {
		t.Error("client without the watch option must not report watching")
	}
}

// breakingTransport passes requests through but cuts the FIRST streaming-
// watch response body at a deadline — a deterministic mid-storm disconnect.
type breakingTransport struct {
	after time.Duration

	mu     sync.Mutex
	broken bool
}

func (b *breakingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil || !strings.Contains(req.URL.RawQuery, "watch=stream") {
		return resp, err
	}
	b.mu.Lock()
	first := !b.broken
	b.broken = true
	b.mu.Unlock()
	if first {
		resp.Body = &expiringBody{rc: resp.Body, deadline: time.Now().Add(b.after)}
	}
	return resp, nil
}

// expiringBody fails every Read past its deadline, simulating a dropped
// connection.
type expiringBody struct {
	rc       io.ReadCloser
	deadline time.Time
}

func (e *expiringBody) Read(p []byte) (int, error) {
	if time.Now().After(e.deadline) {
		return 0, errors.New("connection dropped (test)")
	}
	// Bound each read so the deadline is honored even while parked idle.
	type result struct {
		n   int
		err error
	}
	ch := make(chan result, 1)
	go func() {
		n, err := e.rc.Read(p)
		ch <- result{n, err}
	}()
	select {
	case r := <-ch:
		return r.n, r.err
	case <-time.After(time.Until(e.deadline)):
		_ = e.rc.Close()
		return 0, errors.New("connection dropped (test)")
	}
}

func (e *expiringBody) Close() error { return e.rc.Close() }

// TestStreamWatcherReconnectRidesReplay is the acceptance scenario at the
// client level: a watch client whose stream drops in the middle of an edit
// storm reconnects with its last seen epoch and is served the missed
// versions from journal replay — Replays moves, Refreshes does not (no
// document refetch), and the view converges on the storm's final version.
func TestStreamWatcherReconnectRidesReplay(t *testing.T) {
	mgr, err := core.NewManager(core.Config{Timeout: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mgr.Close() }()
	class := dyn.NewClass("Storm")
	id, err := class.AddMethod(dyn.MethodSpec{Name: "op0", Result: dyn.Int32T, Distributed: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := mgr.Register(class, core.TechSOAP)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		t.Fatal(err)
	}

	hc := &http.Client{Transport: &breakingTransport{after: 60 * time.Millisecond}}
	c, err := Dial(context.Background(), srv.InterfaceURL(), &DialOptions{Watch: true, HTTPClient: hc})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	// The storm: 100 renames, each published, spanning the stream break.
	const storm = 100
	for i := 1; i <= storm; i++ {
		if err := class.RenameMethod(id, fmt.Sprintf("op%d", i)); err != nil {
			t.Fatal(err)
		}
		srv.Publisher().PublishNow()
		srv.Publisher().WaitIdle()
		time.Sleep(2 * time.Millisecond)
	}

	target := class.InterfaceVersion()
	deadline := time.Now().Add(10 * time.Second)
	for c.Versions().Descriptor < target && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := c.Versions().Descriptor; got < target {
		t.Fatalf("client stuck at descriptor version %d, want %d", got, target)
	}
	st := c.Stats()
	if st.Reconnects == 0 {
		t.Errorf("stats = %+v: the dropped stream should have reconnected", st)
	}
	if st.Replays == 0 {
		t.Errorf("stats = %+v: the reconnect should have been served from journal replay", st)
	}
	if st.Refreshes != 1 {
		t.Errorf("stats = %+v: catch-up must not refetch the document (want exactly the initial fetch)", st)
	}
	if st.StreamEvents == 0 {
		t.Errorf("stats = %+v: watch updates should have arrived over the stream", st)
	}
}

// TestCORBAWatcherEvictsPooledConnOnRestart pins the generation-change fix:
// when a watch update's descriptor version moves backwards (the server
// process restarted), the client probes the shared IIOP pool and evicts
// the dead connection, so the next call reconnects from the fresh IOR
// instead of failing on the dead socket forever.
func TestCORBAWatcherEvictsPooledConnOnRestart(t *testing.T) {
	mgr, err := core.NewManager(core.Config{Timeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mgr.Close() }()

	newClass := func(renames int) *dyn.Class {
		c := dyn.NewClass("Calc")
		id, err := c.AddMethod(dyn.MethodSpec{
			Name: "op", Result: dyn.Int32T, Distributed: true,
			Body: func(_ *dyn.Instance, _ []dyn.Value) (dyn.Value, error) {
				return dyn.Int32Value(7), nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < renames; i++ {
			if err := c.RenameMethod(id, fmt.Sprintf("tmp%d", i)); err != nil {
				t.Fatal(err)
			}
			if err := c.RenameMethod(id, "op"); err != nil {
				t.Fatal(err)
			}
		}
		return c
	}

	// First server generation, with an inflated descriptor version.
	class1 := newClass(3)
	srv1, err := mgr.Register(class1, core.TechCORBA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv1.CreateInstance(); err != nil {
		t.Fatal(err)
	}
	srv1.Publisher().PublishNow()
	srv1.Publisher().WaitIdle()

	ctx := context.Background()
	c, err := Dial(ctx, srv1.InterfaceURL(), &DialOptions{Watch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if _, err := c.CallContext(ctx, "op"); err != nil {
		t.Fatalf("pre-restart call: %v", err)
	}

	// "Restart": the server goes away (killing its ORB and the pooled
	// connection) and a fresh generation registers with a lower descriptor
	// version.
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the client observe the dead socket
	class2 := newClass(0)
	srv2, err := mgr.Register(class2, core.TechCORBA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv2.CreateInstance(); err != nil {
		t.Fatal(err)
	}

	// The watch update republished by the new generation triggers the pool
	// probe; the next call must reconnect and succeed.
	deadline := time.Now().Add(10 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		v, err := c.CallContext(ctx, "op")
		if err == nil {
			if got := v.Int32(); got != 7 {
				t.Fatalf("post-restart call returned %v", v)
			}
			return
		}
		lastErr = err
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("calls never recovered after the server restart: %v", lastErr)
}
