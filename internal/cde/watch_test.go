package cde

import (
	"context"
	"errors"
	"strings"
	"testing"

	"livedev/internal/dyn"
)

// noWatchBackend is a minimal Backend without the optional watch capability.
type noWatchBackend struct{}

func (noWatchBackend) FetchInterface(context.Context) (dyn.InterfaceDescriptor, DocVersions, error) {
	return dyn.InterfaceDescriptor{ClassName: "X"}, DocVersions{Doc: 1}, nil
}
func (noWatchBackend) Invoke(context.Context, dyn.MethodSig, []dyn.Value) (dyn.Value, error) {
	return dyn.Value{}, errors.New("not implemented")
}
func (noWatchBackend) IsStale(error) bool { return false }
func (noWatchBackend) Technology() string { return "nowatch" }
func (noWatchBackend) Close() error       { return nil }

// TestWatchRequiresCapableBinding: requesting watch against a backend that
// lacks WatchInterface fails at connect time with a telling error.
func TestWatchRequiresCapableBinding(t *testing.T) {
	_, err := NewClientContext(context.Background(), noWatchBackend{}, &DialOptions{Watch: true})
	if err == nil {
		t.Fatal("watch against a non-watchable backend must fail")
	}
	if !strings.Contains(err.Error(), "does not support watch") {
		t.Errorf("error = %v", err)
	}
}

// TestWatchOffKeepsFetchingPath: without the option the same backend
// connects fine and Watching reports false.
func TestWatchOffKeepsFetchingPath(t *testing.T) {
	c, err := NewClientContext(context.Background(), noWatchBackend{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if c.Watching() {
		t.Error("client without the watch option must not report watching")
	}
}
