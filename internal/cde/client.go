// Package cde implements the paper's Client Development Environment
// (Section 2.3 and [1]): the client half of live, simultaneous
// client-server development. A Client fetches the published interface
// description (WSDL, CORBA-IDL + IOR, or any registered binding's document)
// from the SDE's Interface Server, builds a live stub set from it, and
// invokes server methods by name with dyn values. When the server replies
// "Non Existent Method" — which the Section 5.7 protocol guarantees happens
// only after the published interface is current — the client updates its
// view of the server interface *before* delivering the exception to the
// calling code, so the developer always sees the signature change that
// caused the failure (Section 6, Figure 9). The JPie debugger analogue
// records the failed call and supports 'try again'.
package cde

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"livedev/internal/backoff"
	"livedev/internal/dyn"
	"livedev/internal/ifsvr"
)

// ErrStaleMethod is the sentinel wrapped by *StaleMethodError.
var ErrStaleMethod = errors.New("cde: method is stale on the server")

// ErrNoSuchStub reports a call to a method absent from the client's current
// view of the server interface (even after a refresh).
var ErrNoSuchStub = errors.New("cde: no stub for method")

// StaleMethodError is delivered to the caller after a "Non Existent Method"
// reply. By the time the caller sees it, the client's interface view has
// already been reactively updated, and RefreshedDescriptorVersion records
// the interface version that view came from — the quantity the Section 6
// recency guarantee bounds from below.
type StaleMethodError struct {
	Method string
	// RefreshedDescriptorVersion is the descriptor version of the client's
	// post-refresh interface view.
	RefreshedDescriptorVersion uint64
	// Cause is the transport-level error (SOAP fault / CORBA exception).
	Cause error
}

// Error implements error.
func (e *StaleMethodError) Error() string {
	return fmt.Sprintf("cde: method %s is not part of the current server interface (client view updated to descriptor version %d): %v",
		e.Method, e.RefreshedDescriptorVersion, e.Cause)
}

// Unwrap makes errors.Is(err, ErrStaleMethod) work and preserves the cause.
func (e *StaleMethodError) Unwrap() []error { return []error{ErrStaleMethod, e.Cause} }

// Backend is the technology-specific client plumbing (Axis for SOAP,
// OpenORB DII for CORBA in the paper; our soap, orb, and jsonb packages
// here). Both operations take the caller's context: cancellation must abort
// the underlying transport exchange and surface an error wrapping ctx.Err().
type Backend interface {
	// FetchInterface retrieves and compiles the published interface
	// description, returning the descriptor, the document publish version,
	// and the descriptor version it was generated from.
	FetchInterface(ctx context.Context) (dyn.InterfaceDescriptor, DocVersions, error)
	// Invoke performs the remote call against sig.
	Invoke(ctx context.Context, sig dyn.MethodSig, args []dyn.Value) (dyn.Value, error)
	// IsStale reports whether err is this technology's "Non Existent
	// Method" signal.
	IsStale(err error) bool
	// Technology names the backend ("SOAP", "CORBA", "JSON", ...).
	Technology() string
	// Close releases connections.
	Close() error
}

// WatchableBackend is a Backend with the optional watch capability: its
// published interface document can be watched (push-invalidated) instead of
// polled. All three built-in bindings implement it over the Interface
// Server's long-poll watch protocol; Dial's WithWatch option requires it.
type WatchableBackend interface {
	Backend
	// WatchInterface blocks until the published interface document is newer
	// than the given document version, then compiles and returns it (the
	// same output as FetchInterface, without a per-call fetch). It returns
	// an error wrapping ctx.Err() when ctx ends first.
	WatchInterface(ctx context.Context, after uint64) (dyn.InterfaceDescriptor, DocVersions, error)
}

// InterfaceEvent is one interface view delivered over the streaming watch
// transport.
type InterfaceEvent struct {
	// Desc is the compiled interface descriptor.
	Desc dyn.InterfaceDescriptor
	// Versions are the document's version counters.
	Versions DocVersions
	// Replayed marks a view served from the store journal during reconnect
	// catch-up; Snapshot marks the full-document fallback when the journal
	// no longer covered the client's epoch.
	Replayed, Snapshot bool
}

// StreamingBackend is a WatchableBackend that can additionally hold one
// streaming watch (the Interface Server's "?watch=stream" SSE transport)
// instead of re-issuing a long-poll per update. The client's watcher
// prefers it and degrades to WatchInterface against servers that only
// speak the long-poll protocol. All three built-in bindings implement it.
type StreamingBackend interface {
	WatchableBackend
	// StreamInterface connects one streaming watch, delivering each
	// committed interface version after the given store epoch — replayed
	// catch-up first, then live pushes — until ctx ends or the connection
	// breaks (returned as an error; reconnect with the last seen epoch to
	// ride journal replay). ifsvr.ErrStreamUnsupported reports a server
	// without the transport.
	StreamInterface(ctx context.Context, afterEpoch uint64, deliver func(InterfaceEvent)) error
}

// DocVersions carries the version counters of a published document.
type DocVersions struct {
	// Doc is the Interface Server publish count.
	Doc uint64
	// Descriptor is the interface-descriptor version the document was
	// generated from.
	Descriptor uint64
	// Epoch is the publication store's commit epoch for the document — the
	// cursor a streaming watch reconnects with.
	Epoch uint64
	// Generation is the serving store's restart generation (0 against
	// servers predating it). A generation change with an epoch regression
	// is the restart signal: the new server incarnation did not recover
	// the old one's state, so cursors must reset instead of parking on
	// epochs that will not come back.
	Generation uint64
}

// ClientStats counts client activity.
type ClientStats struct {
	// Calls counts successful remote calls.
	Calls uint64
	// StaleFaults counts "Non Existent Method" replies (each triggers a
	// reactive interface refresh).
	StaleFaults uint64
	// Refreshes counts interface *fetches* (initial, reactive, and manual
	// HTTP round-trips). Watch-delivered updates are counted separately.
	Refreshes uint64
	// WatchUpdates counts interface views installed from watch pushes
	// (either transport) — updates that cost no per-call document fetch.
	WatchUpdates uint64
	// StreamEvents counts events received over the streaming watch
	// transport (live, replayed, and snapshot alike).
	StreamEvents uint64
	// Reconnects counts streaming-watch reconnects after a broken
	// connection.
	Reconnects uint64
	// Evictions counts streams the server terminated for backpressure
	// (this client lagged past the server's watcher budget). Each is also
	// a Reconnect — the recovery is the ordinary reconnect-with-replay.
	Evictions uint64
	// Replays counts interface views installed from journal replay during
	// a streaming-watch (re)connect — catch-up that cost no document fetch
	// (Refreshes does not move).
	Replays uint64
	// Restarts counts server restarts the watcher detected and recovered
	// from: a generation change whose epoch regressed below the client's
	// cursor (the new incarnation did not recover the old state), forcing
	// a view reset. A restarted server that did recover its state (same
	// data dir) is NOT a restart here — the watcher rides journal replay
	// and only Reconnects moves.
	Restarts uint64
	// Backoffs counts backoff waits the watcher's retry loop performed:
	// consecutive failures lengthen the wait exponentially (capped,
	// jittered, reset on success), so each is a dial that hot-spin retry
	// would have made many times over.
	Backoffs uint64
	// Drains counts streams the server ended with a terminal "draining"
	// event (graceful shutdown). Each is followed by an immediate
	// reconnect to the next replica — no backoff, the server asked us to
	// move, we did not fail.
	Drains uint64
}

// Client is a live CDE client bound to one server.
type Client struct {
	backend Backend

	// callTimeout, when non-zero, bounds each call whose context carries no
	// deadline of its own (the Dial WithTimeout option).
	callTimeout time.Duration

	mu       sync.RWMutex
	iface    dyn.InterfaceDescriptor
	versions DocVersions
	stats    ClientStats
	// viewChanged is closed and replaced whenever a new interface view is
	// installed; the stale-call path waits on it for the watch push.
	viewChanged chan struct{}
	// viewHooks run (outside the lock) after every installed view — the
	// hooks bridges use for event-driven re-export. Keyed so several
	// listeners (e.g. two fronts over one client) coexist.
	viewHooks map[uint64]func()
	nextHook  uint64

	// watching is set when the push watcher is running.
	watching    bool
	watchCancel context.CancelFunc
	watchDone   chan struct{}

	debugger *Debugger

	refreshMu sync.Mutex // serializes concurrent reactive refreshes
}

// NewClient wraps a backend and performs the initial interface fetch —
// step (1) of Figures 1 and 2.
func NewClient(backend Backend) (*Client, error) {
	return NewClientContext(context.Background(), backend, nil)
}

// NewClientContext is NewClient with a context governing the initial
// interface fetch and per-client options (nil for defaults).
func NewClientContext(ctx context.Context, backend Backend, opts *DialOptions) (*Client, error) {
	c := &Client{backend: backend, viewChanged: make(chan struct{})}
	c.debugger = &Debugger{client: c}
	if opts != nil {
		c.callTimeout = opts.Timeout
		if opts.Prompt != nil {
			c.debugger.SetPrompt(opts.Prompt)
		}
	}
	if err := c.RefreshContext(ctx); err != nil {
		// The backend may already hold resources (the CORBA backend takes a
		// pooled IIOP connection ref during the fetch); a failed dial must
		// release them.
		_ = backend.Close()
		return nil, err
	}
	if opts != nil && opts.Watch {
		wb, ok := backend.(WatchableBackend)
		if !ok {
			_ = backend.Close()
			return nil, fmt.Errorf("cde: the %s binding does not support watch (backend lacks WatchInterface)", backend.Technology())
		}
		c.startWatch(wb)
	}
	return c, nil
}

// startWatch launches the push watcher: a goroutine following the published
// interface document and installing each new version into the client's view
// — the push-invalidated interface cache. It prefers the streaming
// transport (one held SSE connection, journal-replay catch-up on
// reconnect) and degrades to long-polling against servers that only speak
// that protocol.
func (c *Client) startWatch(wb WatchableBackend) {
	ctx, cancel := context.WithCancel(context.Background())
	c.mu.Lock()
	c.watching = true
	c.watchCancel = cancel
	c.watchDone = make(chan struct{})
	done := c.watchDone
	c.mu.Unlock()
	go func() {
		defer close(done)
		if sb, ok := wb.(StreamingBackend); ok {
			if c.runStreamWatch(ctx, sb) {
				return
			}
			// The server does not stream; fall back for the client's
			// lifetime.
		}
		c.runPollWatch(ctx, wb)
	}()
}

// runStreamWatch holds one streaming watch, reconnecting with the last seen
// epoch after a break so catch-up rides journal replay instead of a
// refetch. It reports true when ctx ended (the watcher is done) and false
// when the server does not support streaming (degrade to long-poll).
func (c *Client) runStreamWatch(ctx context.Context, sb StreamingBackend) bool {
	bo := &backoff.Backoff{Base: watchRetryDelay, Cap: watchRetryCap}
	for {
		after := c.Versions().Epoch
		err := sb.StreamInterface(ctx, after, func(ev InterfaceEvent) {
			installed := c.installView(ev.Desc, ev.Versions, true, c.noteRestart(ev.Versions))
			c.mu.Lock()
			c.stats.StreamEvents++
			if ev.Replayed && installed {
				c.stats.Replays++
			}
			c.mu.Unlock()
			// A delivered event proves the stream healthy: the next break
			// starts a fresh failure streak.
			bo.Reset()
		})
		if ctx.Err() != nil {
			return true
		}
		if errors.Is(err, ifsvr.ErrStreamUnsupported) {
			return false
		}
		if errors.Is(err, ifsvr.ErrStreamDraining) {
			// The server ended the stream because it is shutting down
			// gracefully: reconnect immediately — the backend's endpoint
			// rotation already points at the next replica, and our cursors
			// ride replay there. No backoff; this was not a failure.
			c.mu.Lock()
			c.stats.Drains++
			c.stats.Reconnects++
			c.mu.Unlock()
			continue
		}
		// Broken stream (server restart, network blip, or a backpressure
		// eviction because this client lagged): back off — exponentially
		// while the breaks continue — and reconnect; the server replays
		// what we missed.
		c.mu.Lock()
		if errors.Is(err, ifsvr.ErrStreamEvicted) {
			c.stats.Evictions++
		}
		c.stats.Reconnects++
		c.stats.Backoffs++
		c.mu.Unlock()
		select {
		case <-ctx.Done():
			return true
		case <-time.After(bo.Next()):
		}
	}
}

// runPollWatch is the long-poll watcher: one blocking WatchInterface round
// per committed version.
func (c *Client) runPollWatch(ctx context.Context, wb WatchableBackend) {
	bo := &backoff.Backoff{Base: watchRetryDelay, Cap: watchRetryCap}
	for {
		after := c.Versions().Doc
		desc, vers, err := wb.WatchInterface(ctx, after)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			// Transient watch failure (server restarting or draining,
			// network blip): back off — exponentially while the failures
			// continue — and resubscribe (against the next replica when
			// the backend rotates endpoints).
			c.mu.Lock()
			c.stats.Backoffs++
			c.mu.Unlock()
			select {
			case <-ctx.Done():
				return
			case <-time.After(bo.Next()):
			}
			continue
		}
		bo.Reset()
		c.installView(desc, vers, true, c.noteRestart(vers))
	}
}

// noteRestart reports whether a watched view belongs to a new server
// incarnation that did not recover the previous one's state — a restart-
// generation change whose epoch OR document version regressed below the
// client's cursors. That combination forces the view past the
// no-backwards rule. The document-version check matters when the new
// incarnation's store-wide epoch has already overtaken the client's
// (path-scoped) epoch cursor: per-incarnation document versions are
// monotone per path, so a regressed version under a new generation is
// still proof of state loss. A generation change with both cursors
// intact is a durable server restart the watcher rides via journal
// replay, and a snapshot on an unchanged generation is merely a journal
// eviction — neither forces anything.
func (c *Client) noteRestart(vers DocVersions) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if vers.Generation == 0 || c.versions.Generation == 0 ||
		vers.Generation == c.versions.Generation {
		return false
	}
	if vers.Epoch >= c.versions.Epoch && vers.Doc >= c.versions.Doc {
		return false
	}
	c.stats.Restarts++
	return true
}

// watchRetryDelay is the base pacing of watch resubscription after a
// transient failure; consecutive failures back off exponentially up to
// watchRetryCap (jittered, reset on success). Vars, not consts, so tests
// can compress the schedule.
var (
	watchRetryDelay = 200 * time.Millisecond
	watchRetryCap   = 5 * time.Second
)

// Watching reports whether the push watcher is running.
func (c *Client) Watching() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.watching
}

// AddViewListener registers a hook run synchronously (outside the client's
// lock) after every installed interface view — watch pushes, reactive
// refreshes, and manual refreshes alike — and returns its remove function.
// Bridges use it to keep their re-exported classes in step with the
// backend; multiple listeners (two fronts over one client) coexist.
func (c *Client) AddViewListener(fn func()) (remove func()) {
	c.mu.Lock()
	if c.viewHooks == nil {
		c.viewHooks = make(map[uint64]func())
	}
	id := c.nextHook
	c.nextHook++
	c.viewHooks[id] = fn
	c.mu.Unlock()
	return func() {
		c.mu.Lock()
		delete(c.viewHooks, id)
		c.mu.Unlock()
	}
}

// installView installs a fetched or pushed interface view. The view never
// moves backwards: an older document than the current view is dropped (its
// fetch is still counted) — unless force is set, the restart path, where
// the regressed view is the new server's truth. It reports whether the
// view was installed.
func (c *Client) installView(desc dyn.InterfaceDescriptor, vers DocVersions, fromWatch, force bool) bool {
	c.mu.Lock()
	if !fromWatch {
		// A fetch happened whether or not its result wins the race below.
		c.stats.Refreshes++
	}
	if vers.Doc < c.versions.Doc && !force {
		c.mu.Unlock()
		return false
	}
	if fromWatch {
		// Counted only when the pushed view is actually installed.
		c.stats.WatchUpdates++
	}
	c.iface = desc
	c.versions = vers
	close(c.viewChanged)
	c.viewChanged = make(chan struct{})
	hooks := make([]func(), 0, len(c.viewHooks))
	for _, h := range c.viewHooks {
		hooks = append(hooks, h)
	}
	c.mu.Unlock()
	for _, h := range hooks {
		h()
	}
	return true
}

// Technology reports the backend technology.
func (c *Client) Technology() string { return c.backend.Technology() }

// Interface returns the client's current view of the server interface.
func (c *Client) Interface() dyn.InterfaceDescriptor {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.iface
}

// Versions returns the versions of the interface document the current view
// came from.
func (c *Client) Versions() DocVersions {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.versions
}

// Stats returns a snapshot of the client counters.
func (c *Client) Stats() ClientStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.stats
}

// Debugger returns the client's debugger.
func (c *Client) Debugger() *Debugger { return c.debugger }

// Refresh is RefreshContext with a background context.
func (c *Client) Refresh() error { return c.RefreshContext(context.Background()) }

// RefreshContext re-fetches the published interface description and
// rebuilds the stub set — the "regular update" edge of Figure 8. The view
// never moves backwards: a fetch racing a newer fetch is discarded by
// comparing document versions.
func (c *Client) RefreshContext(ctx context.Context) error {
	desc, vers, err := c.backend.FetchInterface(ctx)
	if err != nil {
		return err
	}
	c.installView(desc, vers, false, c.noteRestart(vers))
	return nil
}

// watchStaleWait bounds how long a stale call waits for the watch push
// before falling back to an HTTP refresh. The push normally arrives within
// a round-trip of the "Non Existent Method" reply (the server committed the
// document before replying), so the bound only matters when the watch
// stream is wedged — or when the server runs the ActivePublishingOnly
// ablation, where no forced publication happens and every stale call pays
// the full fallback wait; don't combine watch clients with that ablation.
const watchStaleWait = 2 * time.Second

// reactiveRefresh brings the client's view up to date after a "Non Existent
// Method" reply to a call against sig. Without a watcher it fetches the
// document (the classic Section 6 path). With a watcher, the
// push-invalidated cache resolves it: the server's forced publication is
// already on its way to the watcher, so this waits for a view that is both
// newer than the one the failed call was made against and no longer
// carries the failed signature — an intermediate publication that still
// contains it cannot be the forced one, so the wait continues (the view
// must explain the fault, per Section 6). If no such push arrives within
// watchStaleWait the refresh falls back to a fetch so the recency
// guarantee holds regardless.
func (c *Client) reactiveRefresh(ctx context.Context, calledWith uint64, sig dyn.MethodSig) error {
	if !c.Watching() {
		return c.RefreshContext(ctx)
	}
	fallback := time.NewTimer(watchStaleWait)
	defer fallback.Stop()
	for {
		c.mu.RLock()
		cur := c.versions.Doc
		changed := c.viewChanged
		have, stillThere := c.iface.Lookup(sig.Name)
		c.mu.RUnlock()
		if cur > calledWith && (!stillThere || !have.Equal(sig)) {
			return nil
		}
		select {
		case <-changed:
		case <-ctx.Done():
			return ctx.Err()
		case <-fallback.C:
			// Covers the pathological tails (e.g. the signature was
			// restored unchanged after the fault) with one bounded fetch.
			return c.RefreshContext(ctx)
		}
	}
}

// Call is CallContext with a background context (bounded by the client's
// default timeout, if one was configured).
//
// Deprecated: use CallContext so calls can carry deadlines and be
// cancelled.
func (c *Client) Call(method string, args ...dyn.Value) (dyn.Value, error) {
	return c.CallContext(context.Background(), method, args...)
}

// CallContext invokes a server method by name. The signature is resolved
// against the client's current interface view; arguments are type-checked
// against it; and the reactive-update protocol of Section 6 runs on "Non
// Existent Method" replies: refresh first, then deliver a
// *StaleMethodError, which is also recorded with the debugger.
//
// Cancelling ctx (or exceeding its deadline, or the client's configured
// default timeout when ctx carries no deadline) aborts the in-flight
// exchange; the returned error wraps ctx.Err(), so
// errors.Is(err, context.Canceled) and errors.Is(err,
// context.DeadlineExceeded) hold.
func (c *Client) CallContext(ctx context.Context, method string, args ...dyn.Value) (dyn.Value, error) {
	if c.callTimeout > 0 {
		if _, hasDeadline := ctx.Deadline(); !hasDeadline {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.callTimeout)
			defer cancel()
		}
	}

	c.mu.RLock()
	calledWith := c.versions.Doc
	sig, ok := c.iface.Lookup(method)
	c.mu.RUnlock()
	if !ok {
		// The local view may predate a server-side addition: refresh once.
		if err := c.RefreshContext(ctx); err != nil {
			return dyn.Value{}, err
		}
		c.mu.RLock()
		// Re-snapshot the view version too: the invoke below runs against
		// the refreshed view, so the reactive-update wait on a stale reply
		// must be measured from here, not from the pre-refresh version.
		calledWith = c.versions.Doc
		sig, ok = c.iface.Lookup(method)
		c.mu.RUnlock()
		if !ok {
			return dyn.Value{}, fmt.Errorf("%w: %s", ErrNoSuchStub, method)
		}
	}

	result, err := c.backend.Invoke(ctx, sig, args)
	if err == nil {
		c.mu.Lock()
		c.stats.Calls++
		c.mu.Unlock()
		return result, nil
	}
	if !c.backend.IsStale(err) {
		return dyn.Value{}, err
	}

	// Section 6: "when a 'Non existent Method' exception is received by
	// the client backend, the client view of the server interface is
	// updated to the currently published one. Then, the exception is sent
	// to the dynamic class that made the original RMI call." With a watcher
	// running, the update comes from the push-invalidated cache instead of
	// a per-call document refetch.
	c.refreshMu.Lock()
	refreshErr := c.reactiveRefresh(ctx, calledWith, sig)
	c.refreshMu.Unlock()

	c.mu.Lock()
	c.stats.StaleFaults++
	ver := c.versions.Descriptor
	c.mu.Unlock()

	staleErr := &StaleMethodError{Method: method, RefreshedDescriptorVersion: ver, Cause: err}
	if refreshErr != nil {
		staleErr.Cause = errors.Join(err, fmt.Errorf("reactive refresh failed: %w", refreshErr))
	}
	c.debugger.record(method, args, staleErr)
	return dyn.Value{}, staleErr
}

// AutoRefresh starts periodically refreshing the interface view (the
// "regular update" path) and returns a stop function that blocks until the
// refresher goroutine exits.
func (c *Client) AutoRefresh(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				_ = c.Refresh()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-finished
	}
}

// Close stops the watcher (if any) and releases the backend.
func (c *Client) Close() error {
	c.mu.Lock()
	cancel, done := c.watchCancel, c.watchDone
	c.watchCancel, c.watchDone = nil, nil
	c.watching = false
	c.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
	return c.backend.Close()
}

// Exception is a failed call recorded by the debugger (Figure 9).
type Exception struct {
	Method string
	Args   []dyn.Value
	Err    error
	// SignatureNow is the method's signature in the client's post-refresh
	// interface view, if the method still exists — what the debugger shows
	// the developer so "the server interface change is clearly visible".
	SignatureNow *dyn.MethodSig
}

// Debugger is the JPie-debugger analogue: it records stale-call exceptions,
// invokes an optional prompt hook (the paper's dialog of Figure 9), and
// supports the 'try again' feature: re-execute the call, which picks up the
// refreshed signature and resumes normal execution if the developer (or the
// server developer) resolved the mismatch.
type Debugger struct {
	client *Client

	mu     sync.Mutex
	last   *Exception
	prompt func(Exception)
}

// SetPrompt installs a hook called synchronously whenever an exception is
// recorded.
func (d *Debugger) SetPrompt(f func(Exception)) {
	d.mu.Lock()
	d.prompt = f
	d.mu.Unlock()
}

// Last returns the most recently recorded exception.
func (d *Debugger) Last() (Exception, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.last == nil {
		return Exception{}, false
	}
	return *d.last, true
}

func (d *Debugger) record(method string, args []dyn.Value, err error) {
	ex := Exception{Method: method, Args: args, Err: err}
	if sig, ok := d.client.Interface().Lookup(method); ok {
		ex.SignatureNow = &sig
	}
	d.mu.Lock()
	d.last = &ex
	prompt := d.prompt
	d.mu.Unlock()
	if prompt != nil {
		prompt(ex)
	}
}

// TryAgain is TryAgainContext with a background context.
func (d *Debugger) TryAgain() (dyn.Value, error) {
	return d.TryAgainContext(context.Background())
}

// TryAgainContext re-executes the last failed call with its original
// arguments. If the server developer restored a compatible signature,
// execution resumes normally (Section 6's 'try again' flow).
func (d *Debugger) TryAgainContext(ctx context.Context) (dyn.Value, error) {
	d.mu.Lock()
	ex := d.last
	d.mu.Unlock()
	if ex == nil {
		return dyn.Value{}, errors.New("cde: no failed call to retry")
	}
	return d.client.CallContext(ctx, ex.Method, ex.Args...)
}
