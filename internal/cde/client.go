// Package cde implements the paper's Client Development Environment
// (Section 2.3 and [1]): the client half of live, simultaneous
// client-server development. A Client fetches the published interface
// description (WSDL, CORBA-IDL + IOR, or any registered binding's document)
// from the SDE's Interface Server, builds a live stub set from it, and
// invokes server methods by name with dyn values. When the server replies
// "Non Existent Method" — which the Section 5.7 protocol guarantees happens
// only after the published interface is current — the client updates its
// view of the server interface *before* delivering the exception to the
// calling code, so the developer always sees the signature change that
// caused the failure (Section 6, Figure 9). The JPie debugger analogue
// records the failed call and supports 'try again'.
package cde

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"livedev/internal/dyn"
)

// ErrStaleMethod is the sentinel wrapped by *StaleMethodError.
var ErrStaleMethod = errors.New("cde: method is stale on the server")

// ErrNoSuchStub reports a call to a method absent from the client's current
// view of the server interface (even after a refresh).
var ErrNoSuchStub = errors.New("cde: no stub for method")

// StaleMethodError is delivered to the caller after a "Non Existent Method"
// reply. By the time the caller sees it, the client's interface view has
// already been reactively updated, and RefreshedDescriptorVersion records
// the interface version that view came from — the quantity the Section 6
// recency guarantee bounds from below.
type StaleMethodError struct {
	Method string
	// RefreshedDescriptorVersion is the descriptor version of the client's
	// post-refresh interface view.
	RefreshedDescriptorVersion uint64
	// Cause is the transport-level error (SOAP fault / CORBA exception).
	Cause error
}

// Error implements error.
func (e *StaleMethodError) Error() string {
	return fmt.Sprintf("cde: method %s is not part of the current server interface (client view updated to descriptor version %d): %v",
		e.Method, e.RefreshedDescriptorVersion, e.Cause)
}

// Unwrap makes errors.Is(err, ErrStaleMethod) work and preserves the cause.
func (e *StaleMethodError) Unwrap() []error { return []error{ErrStaleMethod, e.Cause} }

// Backend is the technology-specific client plumbing (Axis for SOAP,
// OpenORB DII for CORBA in the paper; our soap, orb, and jsonb packages
// here). Both operations take the caller's context: cancellation must abort
// the underlying transport exchange and surface an error wrapping ctx.Err().
type Backend interface {
	// FetchInterface retrieves and compiles the published interface
	// description, returning the descriptor, the document publish version,
	// and the descriptor version it was generated from.
	FetchInterface(ctx context.Context) (dyn.InterfaceDescriptor, DocVersions, error)
	// Invoke performs the remote call against sig.
	Invoke(ctx context.Context, sig dyn.MethodSig, args []dyn.Value) (dyn.Value, error)
	// IsStale reports whether err is this technology's "Non Existent
	// Method" signal.
	IsStale(err error) bool
	// Technology names the backend ("SOAP", "CORBA", "JSON", ...).
	Technology() string
	// Close releases connections.
	Close() error
}

// DocVersions carries the two version counters of a published document.
type DocVersions struct {
	// Doc is the Interface Server publish count.
	Doc uint64
	// Descriptor is the interface-descriptor version the document was
	// generated from.
	Descriptor uint64
}

// ClientStats counts client activity.
type ClientStats struct {
	// Calls counts successful remote calls.
	Calls uint64
	// StaleFaults counts "Non Existent Method" replies (each triggers a
	// reactive interface refresh).
	StaleFaults uint64
	// Refreshes counts interface fetches (initial, reactive, and manual).
	Refreshes uint64
}

// Client is a live CDE client bound to one server.
type Client struct {
	backend Backend

	// callTimeout, when non-zero, bounds each call whose context carries no
	// deadline of its own (the Dial WithTimeout option).
	callTimeout time.Duration

	mu       sync.RWMutex
	iface    dyn.InterfaceDescriptor
	versions DocVersions
	stats    ClientStats

	debugger *Debugger

	refreshMu sync.Mutex // serializes concurrent reactive refreshes
}

// NewClient wraps a backend and performs the initial interface fetch —
// step (1) of Figures 1 and 2.
func NewClient(backend Backend) (*Client, error) {
	return NewClientContext(context.Background(), backend, nil)
}

// NewClientContext is NewClient with a context governing the initial
// interface fetch and per-client options (nil for defaults).
func NewClientContext(ctx context.Context, backend Backend, opts *DialOptions) (*Client, error) {
	c := &Client{backend: backend}
	c.debugger = &Debugger{client: c}
	if opts != nil {
		c.callTimeout = opts.Timeout
		if opts.Prompt != nil {
			c.debugger.SetPrompt(opts.Prompt)
		}
	}
	if err := c.RefreshContext(ctx); err != nil {
		return nil, err
	}
	return c, nil
}

// Technology reports the backend technology.
func (c *Client) Technology() string { return c.backend.Technology() }

// Interface returns the client's current view of the server interface.
func (c *Client) Interface() dyn.InterfaceDescriptor {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.iface
}

// Versions returns the versions of the interface document the current view
// came from.
func (c *Client) Versions() DocVersions {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.versions
}

// Stats returns a snapshot of the client counters.
func (c *Client) Stats() ClientStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.stats
}

// Debugger returns the client's debugger.
func (c *Client) Debugger() *Debugger { return c.debugger }

// Refresh is RefreshContext with a background context.
func (c *Client) Refresh() error { return c.RefreshContext(context.Background()) }

// RefreshContext re-fetches the published interface description and
// rebuilds the stub set — the "regular update" edge of Figure 8. The view
// never moves backwards: a fetch racing a newer fetch is discarded by
// comparing document versions.
func (c *Client) RefreshContext(ctx context.Context) error {
	desc, vers, err := c.backend.FetchInterface(ctx)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Refreshes++
	if vers.Doc >= c.versions.Doc {
		c.iface = desc
		c.versions = vers
	}
	return nil
}

// Call is CallContext with a background context (bounded by the client's
// default timeout, if one was configured).
//
// Deprecated: use CallContext so calls can carry deadlines and be
// cancelled.
func (c *Client) Call(method string, args ...dyn.Value) (dyn.Value, error) {
	return c.CallContext(context.Background(), method, args...)
}

// CallContext invokes a server method by name. The signature is resolved
// against the client's current interface view; arguments are type-checked
// against it; and the reactive-update protocol of Section 6 runs on "Non
// Existent Method" replies: refresh first, then deliver a
// *StaleMethodError, which is also recorded with the debugger.
//
// Cancelling ctx (or exceeding its deadline, or the client's configured
// default timeout when ctx carries no deadline) aborts the in-flight
// exchange; the returned error wraps ctx.Err(), so
// errors.Is(err, context.Canceled) and errors.Is(err,
// context.DeadlineExceeded) hold.
func (c *Client) CallContext(ctx context.Context, method string, args ...dyn.Value) (dyn.Value, error) {
	if c.callTimeout > 0 {
		if _, hasDeadline := ctx.Deadline(); !hasDeadline {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.callTimeout)
			defer cancel()
		}
	}

	c.mu.RLock()
	sig, ok := c.iface.Lookup(method)
	c.mu.RUnlock()
	if !ok {
		// The local view may predate a server-side addition: refresh once.
		if err := c.RefreshContext(ctx); err != nil {
			return dyn.Value{}, err
		}
		c.mu.RLock()
		sig, ok = c.iface.Lookup(method)
		c.mu.RUnlock()
		if !ok {
			return dyn.Value{}, fmt.Errorf("%w: %s", ErrNoSuchStub, method)
		}
	}

	result, err := c.backend.Invoke(ctx, sig, args)
	if err == nil {
		c.mu.Lock()
		c.stats.Calls++
		c.mu.Unlock()
		return result, nil
	}
	if !c.backend.IsStale(err) {
		return dyn.Value{}, err
	}

	// Section 6: "when a 'Non existent Method' exception is received by
	// the client backend, the client view of the server interface is
	// updated to the currently published one. Then, the exception is sent
	// to the dynamic class that made the original RMI call."
	c.refreshMu.Lock()
	refreshErr := c.RefreshContext(ctx)
	c.refreshMu.Unlock()

	c.mu.Lock()
	c.stats.StaleFaults++
	ver := c.versions.Descriptor
	c.mu.Unlock()

	staleErr := &StaleMethodError{Method: method, RefreshedDescriptorVersion: ver, Cause: err}
	if refreshErr != nil {
		staleErr.Cause = errors.Join(err, fmt.Errorf("reactive refresh failed: %w", refreshErr))
	}
	c.debugger.record(method, args, staleErr)
	return dyn.Value{}, staleErr
}

// AutoRefresh starts periodically refreshing the interface view (the
// "regular update" path) and returns a stop function that blocks until the
// refresher goroutine exits.
func (c *Client) AutoRefresh(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				_ = c.Refresh()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-finished
	}
}

// Close releases the backend.
func (c *Client) Close() error { return c.backend.Close() }

// Exception is a failed call recorded by the debugger (Figure 9).
type Exception struct {
	Method string
	Args   []dyn.Value
	Err    error
	// SignatureNow is the method's signature in the client's post-refresh
	// interface view, if the method still exists — what the debugger shows
	// the developer so "the server interface change is clearly visible".
	SignatureNow *dyn.MethodSig
}

// Debugger is the JPie-debugger analogue: it records stale-call exceptions,
// invokes an optional prompt hook (the paper's dialog of Figure 9), and
// supports the 'try again' feature: re-execute the call, which picks up the
// refreshed signature and resumes normal execution if the developer (or the
// server developer) resolved the mismatch.
type Debugger struct {
	client *Client

	mu     sync.Mutex
	last   *Exception
	prompt func(Exception)
}

// SetPrompt installs a hook called synchronously whenever an exception is
// recorded.
func (d *Debugger) SetPrompt(f func(Exception)) {
	d.mu.Lock()
	d.prompt = f
	d.mu.Unlock()
}

// Last returns the most recently recorded exception.
func (d *Debugger) Last() (Exception, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.last == nil {
		return Exception{}, false
	}
	return *d.last, true
}

func (d *Debugger) record(method string, args []dyn.Value, err error) {
	ex := Exception{Method: method, Args: args, Err: err}
	if sig, ok := d.client.Interface().Lookup(method); ok {
		ex.SignatureNow = &sig
	}
	d.mu.Lock()
	d.last = &ex
	prompt := d.prompt
	d.mu.Unlock()
	if prompt != nil {
		prompt(ex)
	}
}

// TryAgain is TryAgainContext with a background context.
func (d *Debugger) TryAgain() (dyn.Value, error) {
	return d.TryAgainContext(context.Background())
}

// TryAgainContext re-executes the last failed call with its original
// arguments. If the server developer restored a compatible signature,
// execution resumes normally (Section 6's 'try again' flow).
func (d *Debugger) TryAgainContext(ctx context.Context) (dyn.Value, error) {
	d.mu.Lock()
	ex := d.last
	d.mu.Unlock()
	if ex == nil {
		return dyn.Value{}, errors.New("cde: no failed call to retry")
	}
	return d.client.CallContext(ctx, ex.Method, ex.Args...)
}
