package ifsvr

import "testing"

// TestReplicatedJournalStaysSorted pins the journal-insert invariant
// under interleaved shard streams: a multi-epoch bootstrap block from
// one shard must not land as one contiguous run around an epoch another
// shard's live record already journaled — the replay binary search
// requires the ring sorted by epoch.
func TestReplicatedJournalStaysSorted(t *testing.T) {
	s := NewStore(0, nil)
	defer s.Close()

	// Shard B's live commit record applies first, at epoch 5.
	s.ApplyReplicated([]StoreEvent{
		{Path: "/b", Doc: Document{Content: "b1", Version: 1, Epoch: 5}},
	})
	// Shard A's bootstrap block spans epochs 1..9. A contiguous insert
	// keyed on the block's first epoch would place the whole block before
	// epoch 5 and unsort the ring.
	s.ApplyReplicated([]StoreEvent{
		{Path: "/a1", Doc: Document{Content: "a1", Version: 1, Epoch: 1}},
		{Path: "/a2", Doc: Document{Content: "a2", Version: 1, Epoch: 3}},
		{Path: "/a3", Doc: Document{Content: "a3", Version: 1, Epoch: 9}},
	})

	s.mu.Lock()
	var last uint64
	for i, ev := range s.journal {
		if ev.Doc.Epoch < last {
			s.mu.Unlock()
			t.Fatalf("journal unsorted at %d: epoch %d after %d", i, ev.Doc.Epoch, last)
		}
		last = ev.Doc.Epoch
	}
	n := len(s.journal)
	s.mu.Unlock()
	if n != 4 {
		t.Fatalf("journal holds %d events, want 4", n)
	}

	// The binary-searched replay must still see the interleaved entries.
	docs, ok := s.Replay("/b", 3)
	if !ok || len(docs) != 1 || docs[0].Epoch != 5 {
		t.Fatalf("Replay(/b, 3) = %+v, %v; want the epoch-5 version", docs, ok)
	}
	docs, ok = s.Replay("/a3", 5)
	if !ok || len(docs) != 1 || docs[0].Epoch != 9 {
		t.Fatalf("Replay(/a3, 5) = %+v, %v; want the epoch-9 version", docs, ok)
	}
	docs, ok = s.Replay("/a1", 0)
	if !ok || len(docs) != 1 || docs[0].Epoch != 1 {
		t.Fatalf("Replay(/a1, 0) = %+v, %v; want the epoch-1 version", docs, ok)
	}
}

// TestResetReplicatedClearsIncarnation pins the follower-reset seam: a
// replica that adopted state from a dead leader incarnation wipes
// documents, retired floors, journal, and epochs, adopts the new
// generation, and then accepts the new incarnation's LOWER versions.
func TestResetReplicatedClearsIncarnation(t *testing.T) {
	s := NewStore(0, nil)
	defer s.Close()
	s.SetReadOnly(true)
	s.AdoptGeneration(77)
	s.ApplyReplicated([]StoreEvent{
		{Path: "/x", Doc: Document{Content: "old", Version: 9, Epoch: 12}},
	})
	s.ApplyReplicatedRemove("/gone", 4)

	s.ResetReplicated(78)
	if g := s.Generation(); g != 78 {
		t.Fatalf("generation after reset = %d, want 78", g)
	}
	if e := s.Epoch(); e != 0 {
		t.Fatalf("epoch after reset = %d, want 0", e)
	}
	if _, err := s.Get("/x"); err == nil {
		t.Fatal("stale document survived the reset")
	}
	// The new incarnation's low-numbered bootstrap applies cleanly — the
	// old incarnation's version floor is gone.
	if n := s.ApplyReplicated([]StoreEvent{
		{Path: "/x", Doc: Document{Content: "new", Version: 1, Epoch: 2}},
		{Path: "/gone", Doc: Document{Content: "back", Version: 1, Epoch: 3}},
	}); n != 2 {
		t.Fatalf("applied %d events after reset, want 2", n)
	}
	if d, err := s.Get("/x"); err != nil || d.Version != 1 || d.Content != "new" {
		t.Fatalf("post-reset /x = %+v, %v; want v1 %q", d, err, "new")
	}
}
