package ifsvr

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// openDir opens a durable store over dir, failing the test on error.
func openDir(t *testing.T, dir string, historyLen int) *Store {
	t.Helper()
	st, err := OpenStore(StoreConfig{Dir: dir, HistoryLen: historyLen})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStoreRecoversAcrossReopen: documents, versions, the epoch counter,
// retired paths, the replay journal, and the restart generation all
// survive a close/reopen cycle, and the generation increments per open.
func TestStoreRecoversAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	st := openDir(t, dir, 0)
	if got := st.Generation(); got != 1 {
		t.Errorf("first open generation = %d, want 1", got)
	}
	for i := 1; i <= 5; i++ {
		st.PublishVersioned("/wsdl/A.wsdl", "text/xml", fmt.Sprintf("<a%d/>", i), uint64(i))
	}
	st.Publish("/idl/B.idl", "text/plain", "interface B {}")
	st.Remove("/idl/B.idl")
	epoch1 := st.Epoch()
	st.Close()

	st2 := openDir(t, dir, 0)
	defer st2.Close()
	if got := st2.Generation(); got != 2 {
		t.Errorf("second open generation = %d, want 2", got)
	}
	if got := st2.Epoch(); got != epoch1 {
		t.Errorf("recovered epoch = %d, want %d", got, epoch1)
	}
	d, err := st2.Get("/wsdl/A.wsdl")
	if err != nil || d.Version != 5 || d.Content != "<a5/>" || d.DescriptorVersion != 5 {
		t.Fatalf("recovered doc = %+v, %v", d, err)
	}
	if _, err := st2.Get("/idl/B.idl"); err == nil {
		t.Error("retired path resurrected by recovery")
	}
	// The retirement floor survives: republication resumes the sequence.
	if v := st2.Publish("/idl/B.idl", "text/plain", "interface B { void x(); }"); v != 2 {
		t.Errorf("republished retired path at version %d, want 2", v)
	}
	// The journal survives: a watcher that saw epoch 2 replays 3..epoch1.
	docs, ok := st2.Replay("/wsdl/A.wsdl", 2)
	if !ok || len(docs) != 3 {
		t.Fatalf("recovered journal replay = %d docs, ok=%v; want 3, true", len(docs), ok)
	}
	if docs[0].Version != 3 || docs[2].Version != 5 {
		t.Errorf("replayed versions %d..%d, want 3..5", docs[0].Version, docs[2].Version)
	}
	// Epochs strictly continue: the next commit is past the old epoch.
	st2.Publish("/wsdl/A.wsdl", "text/xml", "<a6/>")
	if got := st2.Epoch(); got <= epoch1 {
		t.Errorf("post-restart epoch = %d, want > %d", got, epoch1)
	}
}

// TestStoreRecoveryCompacts: reopening writes a fresh snapshot and resets
// the WAL, so recovery cost does not grow with history.
func TestStoreRecoveryCompacts(t *testing.T) {
	dir := t.TempDir()
	st := openDir(t, dir, 0)
	for i := 1; i <= 10; i++ {
		st.Publish("/doc", "text/plain", fmt.Sprintf("v%d", i))
	}
	st.Close()
	// Close snapshots every shard: all WAL shards must be empty again (the
	// shard-header record is lazy, so a reset log is truly zero bytes).
	for i := 0; i < DefaultShards; i++ {
		wal, err := os.Stat(filepath.Join(dir, shardWALFile(i)))
		if err != nil {
			t.Fatal(err)
		}
		if wal.Size() != 0 {
			t.Errorf("WAL shard %d size after close = %d, want 0 (snapshot compaction)", i, wal.Size())
		}
	}
	st2 := openDir(t, dir, 0)
	defer st2.Close()
	if v := st2.Version("/doc"); v != 10 {
		t.Errorf("recovered version = %d, want 10", v)
	}
}

// TestStoreSnapshotCadence: every SnapshotEvery batches the store compacts
// without waiting for Close — a crash loses at most the tail of the WAL,
// not the whole history.
func TestStoreSnapshotCadence(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(StoreConfig{Dir: dir, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 9; i++ {
		st.Publish("/doc", "text/plain", fmt.Sprintf("v%d", i))
	}
	stats := st.Stats()
	// One snapshot at open, plus two cadence snapshots (batches 4 and 8).
	if stats.Snapshots != 3 {
		t.Errorf("snapshots = %d, want 3 (open + every 4 batches)", stats.Snapshots)
	}
	if stats.WALAppends != 9 {
		t.Errorf("WAL appends = %d, want 9", stats.WALAppends)
	}
	st.Close()
}

// TestRestartRecoveryReplay is the acceptance scenario: streaming watchers
// follow a durable Interface Server through a full process-style restart
// (store closed, HTTP view gone, store reopened from the data dir, view
// rebound). Reconnecting with their last epoch they must be served
// `event: replay` — not a snapshot — with zero missed or duplicated
// versions, and epochs must strictly continue across the restart.
func TestRestartRecoveryReplay(t *testing.T) {
	dir := t.TempDir()
	st := openDir(t, dir, 0)
	srv := NewView(st)
	base, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := strings.TrimPrefix(base, "http://")
	const path = "/wsdl/R.wsdl"
	url := base + path

	const preRestart = 7
	for i := 1; i <= preRestart; i++ {
		st.PublishVersioned(path, "text/xml", fmt.Sprintf("<v%d/>", i), uint64(i))
	}

	// A handful of watchers, parked at different epochs of the history.
	const watchers = 4
	type seenT struct {
		versions  []uint64
		epochs    []uint64
		replays   int
		snapshots int
		gens      map[uint64]bool
	}
	seen := make([]seenT, watchers)
	cursor := make([]uint64, watchers) // each watcher's last seen epoch
	for w := 0; w < watchers; w++ {
		seen[w].gens = map[uint64]bool{}
		// Watcher w follows the stream up to version preRestart-w, then
		// "disconnects" holding that epoch.
		upTo := uint64(preRestart - w)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := WatchStream(ctx, nil, url, 0, func(ev StreamEvent) {
			if ev.Doc.Version > upTo {
				return
			}
			seen[w].versions = append(seen[w].versions, ev.Doc.Version)
			seen[w].epochs = append(seen[w].epochs, ev.Doc.Epoch)
			seen[w].gens[ev.Doc.Generation] = true
			cursor[w] = ev.Doc.Epoch
			if ev.Doc.Version == upTo {
				cancel()
			}
		})
		cancel()
		if ctx.Err() == nil && err != nil {
			t.Fatalf("watcher %d: %v", w, err)
		}
		if cursor[w] == 0 {
			t.Fatalf("watcher %d never reached version %d", w, upTo)
		}
	}

	// Restart: view down, store closed, more commits land after reopening,
	// then the view comes back on the same address.
	preEpoch := st.Epoch()
	gen1 := st.Generation()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2 := openDir(t, dir, 0)
	defer st2.Close()
	if got := st2.Epoch(); got != preEpoch {
		t.Fatalf("reopened epoch = %d, want %d", got, preEpoch)
	}
	const postRestart = 3
	final := uint64(preRestart + postRestart)
	for i := preRestart + 1; i <= preRestart+postRestart; i++ {
		st2.PublishVersioned(path, "text/xml", fmt.Sprintf("<v%d/>", i), uint64(i))
	}
	if got := st2.Epoch(); got <= preEpoch {
		t.Fatalf("post-restart epoch = %d, want > %d (epochs must strictly continue)", got, preEpoch)
	}
	srv2 := NewView(st2)
	if _, err := srv2.Start(addr); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv2.Close() }()

	// Every watcher reconnects with after=<its last epoch> and must be
	// caught up purely from journal replay.
	for w := 0; w < watchers; w++ {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := WatchStream(ctx, nil, url, cursor[w], func(ev StreamEvent) {
			seen[w].versions = append(seen[w].versions, ev.Doc.Version)
			seen[w].epochs = append(seen[w].epochs, ev.Doc.Epoch)
			seen[w].gens[ev.Doc.Generation] = true
			if ev.Replayed {
				seen[w].replays++
			}
			if ev.Snapshot {
				seen[w].snapshots++
			}
			if ev.Doc.Version == final {
				cancel()
			}
		})
		cancel()
		if ctx.Err() == nil && err != nil {
			t.Fatalf("watcher %d reconnect: %v", w, err)
		}
	}

	for w := 0; w < watchers; w++ {
		s := seen[w]
		if s.snapshots != 0 {
			t.Errorf("watcher %d: %d snapshot events; a recovered journal must serve replay", w, s.snapshots)
		}
		if s.replays == 0 {
			t.Errorf("watcher %d: no replay events on reconnect", w)
		}
		// No miss, no dup: versions 1..final exactly once, in order.
		if len(s.versions) != int(final) {
			t.Fatalf("watcher %d: saw %d versions %v, want %d", w, len(s.versions), s.versions, final)
		}
		for i, v := range s.versions {
			if v != uint64(i+1) {
				t.Fatalf("watcher %d: versions = %v, want 1..%d in order", w, s.versions, final)
			}
		}
		for i := 1; i < len(s.epochs); i++ {
			if s.epochs[i] <= s.epochs[i-1] {
				t.Errorf("watcher %d: epoch regressed across restart: %v", w, s.epochs)
			}
		}
		// Both incarnations were observed, under distinct generations.
		if !s.gens[gen1] || !s.gens[st2.Generation()] || gen1 == st2.Generation() {
			t.Errorf("watcher %d: generations seen %v, want {%d, %d}", w, s.gens, gen1, st2.Generation())
		}
	}
}

// TestLongPollCarriesGenerationHeader: the poll-fallback transport carries
// the restart-generation header on both its answers — the 200 with a new
// version and the idle-window 304 — so poll clients detect restarts the
// same way stream clients do.
func TestLongPollCarriesGenerationHeader(t *testing.T) {
	st, url := startStreamServer(t, 0)
	st.Publish("/wsdl/S.wsdl", "text/xml", "<v1/>")
	gen := fmt.Sprintf("%d", st.Generation())
	if gen == "0" {
		t.Fatal("in-memory store must have a nonzero generation")
	}

	// 200: a poll that is immediately satisfied.
	resp, err := http.Get(url + "?watch=1&after=0")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if got := resp.Header.Get(GenerationHeader); got != gen {
		t.Errorf("watch 200 %s = %q, want %q", GenerationHeader, got, gen)
	}

	// 304: a poll whose window elapses idle.
	resp, err = http.Get(url + "?watch=1&after=1&timeout=50ms")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("idle poll answered HTTP %d, want 304", resp.StatusCode)
	}
	if got := resp.Header.Get(GenerationHeader); got != gen {
		t.Errorf("watch 304 %s = %q, want %q", GenerationHeader, got, gen)
	}

	// And the plain document GET.
	resp, err = http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if got := resp.Header.Get(GenerationHeader); got != gen {
		t.Errorf("document GET %s = %q, want %q", GenerationHeader, got, gen)
	}
}

// TestWatchNewerDetectsRegressedServer: a poll parked on a cursor the
// server's state cannot reach (a restart that lost state) must return the
// current document instead of wedging until the caller gives up.
func TestWatchNewerDetectsRegressedServer(t *testing.T) {
	st, url := startStreamServer(t, 0)
	st.Publish("/wsdl/S.wsdl", "text/xml", "<v1/>")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// A client-side timeout keeps each poll round short (the timeout hint
	// makes the server 304 quickly), so the regression check runs fast.
	hc := &http.Client{Timeout: 500 * time.Millisecond}
	// The client's cursor says version 40 — a previous incarnation. The
	// fresh store is at version 1.
	doc, err := WatchNewer(ctx, hc, url, 40)
	if err != nil {
		t.Fatalf("WatchNewer against a regressed server: %v", err)
	}
	if doc.Version != 1 || doc.Content != "<v1/>" {
		t.Errorf("doc = %+v, want the regressed server's current version 1", doc)
	}
	if doc.Generation != st.Generation() {
		t.Errorf("doc generation = %d, want %d (the restart detector's input)", doc.Generation, st.Generation())
	}
}
