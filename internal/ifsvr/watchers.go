package ifsvr

// The watcher wake plane.
//
// Commit used to notify waiters by closing one store-wide broadcast
// channel, which woke every parked long-poll and every held stream on
// every commit — a thundering herd on s.mu at large watcher counts, and
// O(watchers) work per commit even when only one path changed. The
// registry below inverts that: each held connection registers a
// capacity-1 wake channel under the path it watches, the registry is
// sharded by path hash, and a commit touches only the shards its batch
// dirtied — one small lock each, one non-blocking send per watcher of a
// dirty path. Delivery itself happens on the watcher's own goroutine
// (its delivery pump), which pulls pending events from the epoch journal
// at its own pace; see pump.go and the stream server.

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// watchShardCount is the number of locks the watcher registry is split
// across. Watchers of one path always share a shard (path-hash, same
// stable hash as WAL sharding), so a commit's wakeup cost is O(dirty
// shards), not O(registry).
const watchShardCount = 32

// watchShard is one lock's worth of the registry: path → set of wake
// channels, keyed by a per-shard registration id so cancel is O(1).
type watchShard struct {
	mu     sync.Mutex
	paths  map[string]map[uint64]chan<- struct{}
	nextID uint64
}

func (s *Store) watchShardOf(path string) *watchShard {
	return &s.watchers[shardOf(path, watchShardCount)]
}

// watchPath registers a wake channel for path and returns its cancel.
// The channel should have capacity 1; wakeups are non-blocking sends, so
// a full channel simply means a wake is already pending — the watcher
// will drain everything it finds when it gets around to looking.
func (s *Store) watchPath(path string, wake chan<- struct{}) (cancel func()) {
	sh := s.watchShardOf(path)
	sh.mu.Lock()
	if sh.paths == nil {
		sh.paths = make(map[string]map[uint64]chan<- struct{})
	}
	set := sh.paths[path]
	if set == nil {
		set = make(map[uint64]chan<- struct{})
		sh.paths[path] = set
	}
	id := sh.nextID
	sh.nextID++
	set[id] = wake
	sh.mu.Unlock()
	return func() {
		sh.mu.Lock()
		if set := sh.paths[path]; set != nil {
			delete(set, id)
			if len(set) == 0 {
				delete(sh.paths, path)
			}
		}
		sh.mu.Unlock()
	}
}

// wakeWatchers signals every watcher of every path in a committed batch.
// A commit batch carries each path at most once, so no dedup is needed;
// sends are non-blocking against capacity-1 channels, so a slow watcher
// costs the committer nothing.
func (s *Store) wakeWatchers(evs []StoreEvent) {
	var woken uint64
	for _, ev := range evs {
		sh := s.watchShardOf(ev.Path)
		sh.mu.Lock()
		for _, ch := range sh.paths[ev.Path] {
			select {
			case ch <- struct{}{}:
			default:
			}
			woken++
		}
		sh.mu.Unlock()
	}
	if woken > 0 {
		s.fanout.wakes.Add(woken)
	}
}

// wakeAllWatchers nudges every registered watcher regardless of path —
// used for store-wide state changes (close, crash, replicated reset)
// that every held connection must notice.
func (s *Store) wakeAllWatchers() {
	for i := range s.watchers {
		sh := &s.watchers[i]
		sh.mu.Lock()
		for _, set := range sh.paths {
			for _, ch := range set {
				select {
				case ch <- struct{}{}:
				default:
				}
			}
		}
		sh.mu.Unlock()
	}
}

// watcherCounts reports the registered-watcher population, total and per
// shard, for StoreStats.
func (s *Store) watcherCounts() (total int, per []int) {
	per = make([]int, watchShardCount)
	for i := range s.watchers {
		sh := &s.watchers[i]
		sh.mu.Lock()
		n := 0
		for _, set := range sh.paths {
			n += len(set)
		}
		sh.mu.Unlock()
		per[i] = n
		total += n
	}
	return total, per
}

// batchBuckets sizes the power-of-two flush-batch histogram: bucket b
// counts batches of (2^(b-1), 2^b] events, so the last bucket absorbs
// everything past 2^(batchBuckets-1).
const batchBuckets = 12

// fanoutCounters is the delivery plane's hot-path instrumentation: plain
// atomics, no locks, safe to bump from any pump goroutine.
type fanoutCounters struct {
	wakes      atomic.Uint64
	streams    atomic.Uint64
	batches    atomic.Uint64
	events     atomic.Uint64
	heartbeats atomic.Uint64
	evictions  atomic.Uint64
	resets     atomic.Uint64
	batchMax   atomic.Uint64
	hist       [batchBuckets]atomic.Uint64
}

// noteBatch records one pump flush of n events.
func (c *fanoutCounters) noteBatch(n int) {
	if n <= 0 {
		return
	}
	c.batches.Add(1)
	c.events.Add(uint64(n))
	b := bits.Len(uint(n - 1)) // 1→0, 2→1, 3..4→2, 5..8→3, …
	if b >= batchBuckets {
		b = batchBuckets - 1
	}
	c.hist[b].Add(1)
	for {
		cur := c.batchMax.Load()
		if uint64(n) <= cur || c.batchMax.CompareAndSwap(cur, uint64(n)) {
			return
		}
	}
}

// batchPercentile reads the q-quantile of the flush-batch distribution
// off the histogram, reported as the matching bucket's upper bound (so
// it over- rather than under-states queue depth).
func (c *fanoutCounters) batchPercentile(q float64) int {
	var counts [batchBuckets]uint64
	var total uint64
	for i := range counts {
		counts[i] = c.hist[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, n := range counts {
		cum += n
		if cum >= target {
			return 1 << i
		}
	}
	return 1 << (batchBuckets - 1)
}

// FanoutStats is the delivery-plane block of StoreStats: how many
// watchers are held open, how hard commits are waking them, and how the
// backpressure valves (evictions, snapshot resets) are firing.
type FanoutStats struct {
	// Watchers is the number of currently registered watch subscriptions
	// (held streams plus parked long-polls); ShardWatchers is the
	// per-registry-shard breakdown.
	Watchers      int
	ShardWatchers []int
	// Wakes counts wake signals sent to watcher pumps at commit time;
	// Streams counts streaming-watch connections served (cumulative).
	Wakes   uint64
	Streams uint64
	// Batches counts pump flushes; Events the events they carried. One
	// flush is one syscall regardless of how many events it batched.
	Batches uint64
	Events  uint64
	// BatchP50/BatchP99 approximate the events-per-flush distribution
	// (the queue depth a pump found when it woke) as power-of-two bucket
	// upper bounds; BatchMax is exact.
	BatchP50 int
	BatchP99 int
	BatchMax int
	// Heartbeats counts idle-stream liveness comments written by the
	// shared sweep.
	Heartbeats uint64
	// Evictions counts streams dropped for backpressure — a write that
	// missed its deadline, or pending events past MaxWatcherLag.
	Evictions uint64
	// Resets counts mid-stream snapshot resets: a pump's cursor fell
	// below the journal floor and the stream was restarted from the
	// current document instead of buffering the gap.
	Resets uint64
}

// fanoutStats assembles the exported block. Counter reads are atomic and
// the registry walk takes each shard lock briefly; no store lock is held.
func (s *Store) fanoutStats() FanoutStats {
	total, per := s.watcherCounts()
	return FanoutStats{
		Watchers:      total,
		ShardWatchers: per,
		Wakes:         s.fanout.wakes.Load(),
		Streams:       s.fanout.streams.Load(),
		Batches:       s.fanout.batches.Load(),
		Events:        s.fanout.events.Load(),
		BatchP50:      s.fanout.batchPercentile(0.50),
		BatchP99:      s.fanout.batchPercentile(0.99),
		BatchMax:      int(s.fanout.batchMax.Load()),
		Heartbeats:    s.fanout.heartbeats.Load(),
		Evictions:     s.fanout.evictions.Load(),
		Resets:        s.fanout.resets.Load(),
	}
}
