package ifsvr

import "net/http"

// Cleartext HTTP/2 (h2c) on the serving side.
//
// The watch plane's scaling story is many held streams from few client
// processes: SSE watch streams, long-polls, and the h2b binding's
// multiplexed CDR calls all want to share one TCP connection per
// client-server pair instead of one per stream. Go 1.24's net/http can
// serve unencrypted HTTP/2 natively (Server.Protocols), sniffing the h2
// client preface per connection, so HTTP/1.1 clients keep working on the
// same listener — no TLS requirement, no second port, no new dependency.

// H2CHeader is the response header an h2c-capable listener sets on its
// HTTP/1.1 responses, advertising that the same origin accepts
// prior-knowledge cleartext HTTP/2 — the Alt-Svc idea, scoped to this
// system. Clients start a new host on HTTP/1.1 (always safe) and switch
// to h2c once they see the advertisement; probing with an h2 preface
// instead would reach an HTTP/1.1-only server as a junk "PRI *" request,
// which its handler observes, and replayable-request semantics forbid a
// transport making handlers see requests that never logically happened.
const H2CHeader = "X-H2C"

// H2CSupported is the H2CHeader value an h2c-capable listener sends.
const H2CSupported = "supported"

// EnableH2C configures srv to accept cleartext HTTP/2 alongside HTTP/1.1
// on the same listener, with the stream and flow-control budgets sized for
// the watch plane: enough concurrent streams that one client process can
// hold hundreds of watches (or in-flight h2b calls) on one connection, and
// per-stream receive windows that don't stall interface-document-sized
// bodies. Both the Interface Server and the Manager's shared HTTP endpoint
// server run through this, so every binding mounted on either listener is
// reachable over h2c with HTTP/1.1 fallback for free. HTTP/1.1 responses
// gain the H2CHeader advertisement so upgrading clients find the h2c path.
// Call it after srv.Handler is set.
func EnableH2C(srv *http.Server) {
	var p http.Protocols
	p.SetHTTP1(true)
	p.SetUnencryptedHTTP2(true)
	srv.Protocols = &p
	srv.HTTP2 = &http.HTTP2Config{
		// One client process may hold many watch streams plus a burst of
		// concurrent h2b calls on a single connection.
		MaxConcurrentStreams: 512,
		// Generous connection- and stream-level receive windows: interface
		// documents and CDR call bodies are small, but a replay burst after
		// reconnect delivers many of them back to back.
		MaxReceiveBufferPerConnection: 1 << 20,
		MaxReceiveBufferPerStream:     1 << 18,
	}
	if next := srv.Handler; next != nil {
		srv.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.ProtoMajor < 2 {
				w.Header().Set(H2CHeader, H2CSupported)
			}
			next.ServeHTTP(w, r)
		})
	}
}
