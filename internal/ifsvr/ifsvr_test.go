package ifsvr

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"
)

func TestPublishGetVersioning(t *testing.T) {
	s := New()
	if _, err := s.Get("/wsdl/X"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing doc: %v", err)
	}
	if v := s.Publish("/wsdl/X", "text/xml", "<a/>"); v != 1 {
		t.Errorf("first publish version = %d", v)
	}
	if v := s.PublishVersioned("/wsdl/X", "text/xml", "<b/>", 7); v != 2 {
		t.Errorf("second publish version = %d", v)
	}
	d, err := s.Get("/wsdl/X")
	if err != nil {
		t.Fatal(err)
	}
	if d.Content != "<b/>" || d.Version != 2 || d.DescriptorVersion != 7 || d.ContentType != "text/xml" {
		t.Errorf("doc = %+v", d)
	}
	if s.Version("/wsdl/X") != 2 || s.Version("/nope") != 0 {
		t.Error("Version()")
	}
	if len(s.Paths()) != 1 {
		t.Errorf("paths = %v", s.Paths())
	}
}

func TestZeroValueServerUsable(t *testing.T) {
	var s Server
	s.Publish("/p", "text/plain", "x")
	if d, err := s.Get("/p"); err != nil || d.Content != "x" {
		t.Errorf("zero-value server: %v, %v", d, err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("close without start: %v", err)
	}
}

func TestHTTPServing(t *testing.T) {
	s := New()
	s.PublishVersioned("/idl/Calc.idl", "text/plain", "module CalcModule {};", 3)
	base, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.BaseURL() != base {
		t.Error("BaseURL mismatch")
	}

	doc, err := Fetch(nil, base+"/idl/Calc.idl")
	if err != nil {
		t.Fatal(err)
	}
	if doc.Content != "module CalcModule {};" || doc.Version != 1 || doc.DescriptorVersion != 3 {
		t.Errorf("fetched = %+v", doc)
	}

	if _, err := Fetch(nil, base+"/missing"); err == nil {
		t.Error("missing doc over HTTP should fail")
	}

	// Non-GET is rejected.
	resp, err := http.Post(base+"/idl/Calc.idl", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d", resp.StatusCode)
	}
}

func TestFetchConnectError(t *testing.T) {
	if _, err := Fetch(nil, "http://127.0.0.1:1/none"); err == nil {
		t.Error("unreachable fetch should fail")
	}
}

func TestVersionsAreMonotonePerPath(t *testing.T) {
	s := New()
	var last uint64
	for i := 0; i < 50; i++ {
		v := s.Publish("/p", "text/plain", "content")
		if v != last+1 {
			t.Fatalf("version %d after %d", v, last)
		}
		last = v
	}
	// Independent path counts separately.
	if v := s.Publish("/q", "text/plain", "c"); v != 1 {
		t.Errorf("other path version = %d", v)
	}
}

func TestWatchEndpointLongPoll(t *testing.T) {
	s := New()
	s.PublishVersioned("/wsdl/W.wsdl", "text/xml", "<v1/>", 1)
	base, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	url := base + "/wsdl/W.wsdl"

	// A poll for an already-newer version returns immediately.
	doc, err := WatchContext(context.Background(), nil, url, 0)
	if err != nil || doc.Content != "<v1/>" || doc.Version != 1 {
		t.Fatalf("watch after=0: %+v, %v", doc, err)
	}

	// A poll parked on the current version is released by the publication.
	done := make(chan Document, 1)
	go func() {
		d, err := WatchNewer(context.Background(), nil, url, 1)
		if err == nil {
			done <- d
		}
	}()
	time.Sleep(20 * time.Millisecond) // let the poll park
	s.PublishVersioned("/wsdl/W.wsdl", "text/xml", "<v2/>", 2)
	select {
	case d := <-done:
		if d.Content != "<v2/>" || d.Version != 2 || d.DescriptorVersion != 2 {
			t.Errorf("pushed doc = %+v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch poll was not released by the publication")
	}

	// A bounded poll with no publication answers 304 -> ErrNotModified,
	// carrying the current version headers.
	d, err := WatchContext(context.Background(), nil, url+"?timeout=50ms", 2)
	if !errors.Is(err, ErrNotModified) {
		t.Fatalf("idle bounded poll: %+v, %v", d, err)
	}
	if d.Version != 2 {
		t.Errorf("304 version header = %d", d.Version)
	}

	// Watching a never-published path 404s after the poll window.
	if _, err := WatchContext(context.Background(), nil, base+"/nope?timeout=50ms", 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("unpublished watch: %v", err)
	}
}
