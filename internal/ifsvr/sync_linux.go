//go:build linux

package ifsvr

import (
	"os"
	"syscall"
)

// walSync makes an appended WAL shard durable with fdatasync(2): the data
// and the file size reach disk, but the mtime-only metadata update skips
// the journal commit fsync(2) would force. On the group-commit hot path
// that is a measurable fraction of every flush.
func walSync(f *os.File) error {
	if err := syscall.Fdatasync(int(f.Fd())); err != nil {
		return &os.PathError{Op: "fdatasync", Path: f.Name(), Err: err}
	}
	return nil
}
