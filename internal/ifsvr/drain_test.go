package ifsvr

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestShutdownEndsHeldStream: a held SSE watch stream ends with the
// terminal "draining" frame when the server shuts down gracefully, and the
// client helper surfaces it as ErrStreamDraining — the signal to reconnect
// to another replica immediately, without backoff.
func TestShutdownEndsHeldStream(t *testing.T) {
	s := New()
	base, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.Store().PublishVersioned("/doc", "text/plain", "v1", 1)

	got := make(chan error, 1)
	streaming := make(chan struct{})
	go func() {
		first := true
		got <- WatchStream(context.Background(), nil, base+"/doc", 0, func(ev StreamEvent) {
			if first {
				first = false
				close(streaming)
			}
		})
	}()
	select {
	case <-streaming: // the replayed catch-up event proves the stream is held
	case <-time.After(3 * time.Second):
		t.Fatal("stream never established")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	start := time.Now()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Shutdown blocked %v on a held stream", elapsed)
	}
	select {
	case err := <-got:
		if !errors.Is(err, ErrStreamDraining) {
			t.Fatalf("stream ended with %v, want ErrStreamDraining", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stream never ended after Shutdown")
	}
	if !s.Draining() {
		t.Fatal("Draining() = false after Shutdown")
	}
	_ = s.Close()
}

// TestShutdownAnswersParkedLongPoll: a long-poll parked on a future version
// is answered promptly when the drain begins — with 503 and
// Connection: close, NOT 304 — so the client errors out of WatchNewer and
// fails over instead of re-polling this server forever.
func TestShutdownAnswersParkedLongPoll(t *testing.T) {
	s := New()
	base, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.Store().PublishVersioned("/doc", "text/plain", "v1", 1)

	pollErr := make(chan error, 1)
	go func() {
		// after=current version parks the poll waiting for the next commit.
		_, err := WatchContext(context.Background(), nil, base+"/doc", 1)
		pollErr <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the poll park

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case err := <-pollErr:
		if err == nil {
			t.Fatal("parked long-poll returned a document from a draining server")
		}
		if errors.Is(err, ErrNotModified) {
			t.Fatal("draining long-poll answered 304 — the client would re-poll this server forever")
		}
		if !strings.Contains(err.Error(), "503") {
			t.Fatalf("parked long-poll error = %v, want a 503 drain answer", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked long-poll never answered after Shutdown")
	}
	_ = s.Close()
}

// TestShutdownRefusesNewConnections: once Shutdown returns, the listener
// no longer accepts work.
func TestShutdownRefusesNewConnections(t *testing.T) {
	s := New()
	base, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.Store().PublishVersioned("/doc", "text/plain", "v1", 1)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get(base + "/doc"); err == nil {
		t.Fatal("GET succeeded against a drained server")
	}
	_ = s.Close()
}
