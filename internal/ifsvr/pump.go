package ifsvr

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultStreamWriteTimeout bounds each write on a held watch stream
// when Server.StreamWriteTimeout is zero. A peer that cannot absorb a
// write within this budget is evicted rather than allowed to pin a pump
// goroutine (and its batch buffer) indefinitely.
const DefaultStreamWriteTimeout = 5 * time.Second

// A Pump is one held connection's delivery handle: a capacity-1 wake
// channel the commit path (or the shared heartbeat sweep) nudges, plus
// the timestamp of the connection's last successful write. The goroutine
// that owns the connection blocks on WakeChan, and on each wake drains
// everything pending behind its own cursor — so a commit never writes to
// a socket, and a slow socket never slows a commit.
//
// The same type serves the interface-server SSE streams and the
// replication leader's WAL tails; both planes share PumpSweep so N held
// connections cost one ticker goroutine, not N timers.
type Pump struct {
	wake      chan struct{}
	lastWrite atomic.Int64 // unix nanos of the last completed write+flush
}

// NewPump returns a pump whose idle clock starts now (the response
// headers just went out when a connection creates one).
func NewPump() *Pump {
	p := &Pump{wake: make(chan struct{}, 1)}
	p.Touch()
	return p
}

// WakeChan is the channel the pump's owner blocks on. Register it with
// Store.watchPath (streams) or select it alongside a data wake (tails).
func (p *Pump) WakeChan() chan struct{} { return p.wake }

// Nudge delivers a non-blocking wake; a full channel means one is
// already pending, which is all a level-triggered pump needs.
func (p *Pump) Nudge() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// Touch records a completed write, resetting the idle clock the
// heartbeat sweep reads.
func (p *Pump) Touch() { p.lastWrite.Store(time.Now().UnixNano()) }

// Idle reports how long ago the connection last wrote successfully.
func (p *Pump) Idle() time.Duration {
	return time.Duration(time.Now().UnixNano() - p.lastWrite.Load())
}

// PumpSweep replaces per-connection heartbeat timers with one shared
// ticker: a single goroutine periodically nudges every registered pump,
// and each pump decides for itself (via Idle) whether a liveness write
// is due. The sweeping goroutine starts with the first registration and
// exits when the registry empties, so an idle server runs no ticker.
type PumpSweep struct {
	interval time.Duration

	mu       sync.Mutex
	pumps    map[*Pump]struct{}
	sweeping bool
}

// NewPumpSweep returns a sweep ticking at the given interval (clamped to
// at least 1ms). Sweep at half the heartbeat interval so an idle
// connection's liveness write lands within 1.5× the nominal heartbeat.
func NewPumpSweep(interval time.Duration) *PumpSweep {
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	return &PumpSweep{interval: interval, pumps: make(map[*Pump]struct{})}
}

// Add registers a pump, starting the sweeping goroutine if it is the
// first.
func (s *PumpSweep) Add(p *Pump) {
	s.mu.Lock()
	s.pumps[p] = struct{}{}
	if !s.sweeping {
		s.sweeping = true
		go s.run()
	}
	s.mu.Unlock()
}

// Remove unregisters a pump; the sweeping goroutine retires on its own
// once the registry is empty.
func (s *PumpSweep) Remove(p *Pump) {
	s.mu.Lock()
	delete(s.pumps, p)
	s.mu.Unlock()
}

// streamWriteTimeout resolves the server's per-write deadline for held
// streams (0 means deadlines are disabled).
func (s *Server) streamWriteTimeout() time.Duration {
	switch {
	case s.StreamWriteTimeout > 0:
		return s.StreamWriteTimeout
	case s.StreamWriteTimeout < 0:
		return 0
	}
	return DefaultStreamWriteTimeout
}

// pumpSweep lazily builds the server's shared heartbeat sweep, ticking at
// half the heartbeat interval.
func (s *Server) pumpSweep() *PumpSweep {
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	if s.sweep == nil {
		s.sweep = NewPumpSweep(s.heartbeat() / 2)
	}
	return s.sweep
}

func (s *PumpSweep) run() {
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for range t.C {
		s.mu.Lock()
		if len(s.pumps) == 0 {
			s.sweeping = false
			s.mu.Unlock()
			return
		}
		for p := range s.pumps {
			p.Nudge()
		}
		s.mu.Unlock()
	}
}
