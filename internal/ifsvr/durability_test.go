package ifsvr

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// shardPaths returns one document path per shard of a K-way layout, so a
// test can address each shard file deterministically.
func shardPaths(t *testing.T, k int) []string {
	t.Helper()
	paths := make([]string, k)
	found := 0
	for i := 0; found < k && i < 10000; i++ {
		p := fmt.Sprintf("/wsdl/S%04d.wsdl", i)
		if s := shardOf(p, k); paths[s] == "" {
			paths[s] = p
			found++
		}
	}
	if found != k {
		t.Fatalf("could not find a path for each of %d shards", k)
	}
	return paths
}

// TestSyncPolicyStorm runs a concurrent publisher storm under every sync
// policy (race-enabled in CI): N publishers hammer disjoint paths, every
// ack must be consistent with the final committed versions, reopening
// must recover everything, and no persistence errors may surface.
func TestSyncPolicyStorm(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncNone, SyncGroupCommit, SyncAlways} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			st, err := OpenStore(StoreConfig{
				Dir:         dir,
				Shards:      4,
				Sync:        policy,
				GroupWindow: 500 * time.Microsecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			const publishers = 8
			perPub := 25
			if policy == SyncAlways {
				perPub = 8 // every commit pays a real fsync; keep the storm short
			}
			var wg sync.WaitGroup
			for w := 0; w < publishers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					path := fmt.Sprintf("/wsdl/P%d.wsdl", w)
					for i := 1; i <= perPub; i++ {
						if v := st.PublishVersioned(path, "text/xml", fmt.Sprintf("<w%dv%d/>", w, i), uint64(i)); v != uint64(i) {
							t.Errorf("publisher %d commit %d acked version %d", w, i, v)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			stats := st.Stats()
			if stats.PersistErrors != 0 {
				t.Fatalf("persist errors under %v storm: %d", policy, stats.PersistErrors)
			}
			if stats.Durability == nil {
				t.Fatal("durable store reported no durability stats")
			}
			if policy != SyncNone {
				// Every logged record was durable before its ack returned.
				for i := range stats.Durability.LastLSN {
					if d, l := stats.Durability.DurableLSN[i], stats.Durability.LastLSN[i]; d < l {
						t.Errorf("shard %d durable lsn %d < last lsn %d after all acks", i, d, l)
					}
				}
				if stats.Durability.Fsyncs == 0 {
					t.Errorf("no fsyncs recorded under %v", policy)
				}
			}
			st.Close()

			st2, err := OpenStore(StoreConfig{Dir: dir, Shards: 4})
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			for w := 0; w < publishers; w++ {
				path := fmt.Sprintf("/wsdl/P%d.wsdl", w)
				d, err := st2.Get(path)
				if err != nil || d.Version != uint64(perPub) {
					t.Errorf("recovered %s = v%d, %v; want v%d", path, d.Version, err, perPub)
				}
			}
		})
	}
}

// TestGroupCommitAckSurvivesCrash is the ack-honesty test: a publication
// acked under SyncGroupCommit must be recoverable from the data directory
// exactly as the files stand at ack time — reopened without Close, no
// parting flush or snapshot (Crash) — because the ack only returned after
// the shard writer's fsync covered the record.
func TestGroupCommitAckSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(StoreConfig{
		Dir:         dir,
		Shards:      4,
		Sync:        SyncGroupCommit,
		GroupWindow: 500 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	const publishers = 6
	const perPub = 10
	acked := make([][]uint64, publishers) // versions each publisher saw acked
	var wg sync.WaitGroup
	for w := 0; w < publishers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			path := fmt.Sprintf("/wsdl/C%d.wsdl", w)
			for i := 1; i <= perPub; i++ {
				v := st.PublishVersioned(path, "text/xml", fmt.Sprintf("<w%dv%d/>", w, i), uint64(i))
				acked[w] = append(acked[w], v)
			}
		}(w)
	}
	wg.Wait()
	if err := st.Crash(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(StoreConfig{Dir: dir, Shards: 4})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer st2.Close()
	for w := 0; w < publishers; w++ {
		path := fmt.Sprintf("/wsdl/C%d.wsdl", w)
		d, err := st2.Get(path)
		if err != nil {
			t.Fatalf("acked path %s lost in crash: %v", path, err)
		}
		for _, v := range acked[w] {
			if d.Version < v {
				t.Errorf("%s: version %d was acked but recovery stops at %d", path, v, d.Version)
			}
		}
	}
}

// TestShardTorture is the per-shard crash-consistency torture: with K
// shards each holding its own record stream, truncate and bit-flip every
// byte offset of each shard's last record in turn. Parallel recovery must
// yield the longest valid prefix of the damaged shard, leave every other
// shard untouched, and keep epochs strictly continuing — damage to one
// shard file must never bleed into its neighbours.
func TestShardTorture(t *testing.T) {
	const k = 4
	const batches = 4
	paths := shardPaths(t, k)
	dir := t.TempDir()
	st, err := OpenStore(StoreConfig{Dir: dir, Shards: k, SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	finalEpoch := make([]uint64, k) // epoch carried by each shard's last record
	for i := 1; i <= batches; i++ {
		for s, p := range paths {
			st.PublishVersioned(p, "text/xml", fmt.Sprintf("<v%d/>", i), uint64(i))
			finalEpoch[s] = st.Epoch()
		}
	}
	if err := st.Crash(); err != nil {
		t.Fatal(err)
	}

	// Preserve the crash image of every file; each torture round restores
	// it before damaging one shard.
	pristine := make(map[string][]byte)
	for i := 0; i < k; i++ {
		for _, name := range []string{shardWALFile(i), shardSnapshotFile(i)} {
			img, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			pristine[name] = img
		}
	}
	restore := func() {
		for name, img := range pristine {
			if err := os.WriteFile(filepath.Join(dir, name), img, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	check := func(tag string, damaged int) {
		st, err := OpenStore(StoreConfig{Dir: dir, Shards: k, SnapshotEvery: 1 << 20})
		if err != nil {
			t.Fatalf("%s: recovery errored: %v", tag, err)
		}
		for s, p := range paths {
			want := uint64(batches)
			if s == damaged {
				want = batches - 1 // the damaged shard loses exactly its last batch
			}
			if v := st.Version(p); v != want {
				t.Fatalf("%s: shard %d recovered version %d, want %d", tag, s, v, want)
			}
		}
		// The recovered epoch is the newest one an undamaged record carries:
		// losing one shard's tail never rolls back its neighbours.
		var wantEpoch uint64
		for s, e := range finalEpoch {
			if s != damaged && e > wantEpoch {
				wantEpoch = e
			}
		}
		recovered := st.Epoch()
		if recovered != wantEpoch {
			t.Fatalf("%s: recovered epoch %d, want %d (undamaged shards carry the newest epochs)", tag, recovered, wantEpoch)
		}
		// Epochs strictly continue past the recovered state.
		st.Publish(paths[0], "text/xml", "<next/>")
		if got := st.Epoch(); got <= recovered {
			t.Fatalf("%s: post-recovery epoch %d did not advance past %d", tag, got, recovered)
		}
		if err := st.Crash(); err != nil {
			t.Fatal(err)
		}
	}

	for s := 0; s < k; s++ {
		img := pristine[shardWALFile(s)]
		last := lastRecordStart(t, img)
		walPath := filepath.Join(dir, shardWALFile(s))
		for cut := last; cut < len(img); cut++ {
			restore()
			if err := os.WriteFile(walPath, img[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			check(fmt.Sprintf("shard %d truncate@%d", s, cut), s)
		}
		for off := last; off < len(img); off++ {
			restore()
			mut := bytes.Clone(img)
			mut[off] ^= 0xFF
			if err := os.WriteFile(walPath, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			check(fmt.Sprintf("shard %d bitflip@%d", s, off), s)
		}
	}
}

// TestLegacyLayoutMigration: a data directory written by the pre-sharding
// layout (snapshot.json + wal.log, snapshot schema v1) is absorbed on
// first open — documents, retired floors, and WAL-tail records included —
// rewritten into the sharded layout, and the legacy files are deleted
// only after the rewrite.
func TestLegacyLayoutMigration(t *testing.T) {
	dir := t.TempDir()
	// Hand-build the PR 5 layout: a v1 snapshot covering lsn 1 with one
	// doc, plus a WAL carrying one lingering covered record (the lsn
	// guard) and two live ones.
	docA := Document{Content: "<a1/>", ContentType: "text/xml", Version: 1, Epoch: 1}
	snap := map[string]any{
		"schema":      snapshotSchemaV1,
		"generation":  3,
		"epoch":       1,
		"floor_epoch": 0,
		"lsn":         1,
		"docs":        []streamWire{docWire("/wsdl/A.wsdl", docA)},
		"retired":     map[string]uint64{"/idl/gone.idl": 7},
		"journal":     []streamWire{docWire("/wsdl/A.wsdl", docA)},
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, legacySnapshotFile), data, 0o644); err != nil {
		t.Fatal(err)
	}
	docA2 := Document{Content: "<a2/>", ContentType: "text/xml", Version: 2, Epoch: 2}
	docB := Document{Content: "<b1/>", ContentType: "text/xml", Version: 1, Epoch: 3}
	var wal []byte
	wal = append(wal, encodeCommitRecord(1, []StoreEvent{{Path: "/wsdl/A.wsdl", Doc: docA, Payload: encodeEventPayload("/wsdl/A.wsdl", docA)}})...)
	wal = append(wal, encodeCommitRecord(2, []StoreEvent{{Path: "/wsdl/A.wsdl", Doc: docA2, Payload: encodeEventPayload("/wsdl/A.wsdl", docA2)}})...)
	wal = append(wal, encodeCommitRecord(3, []StoreEvent{{Path: "/wsdl/B.wsdl", Doc: docB, Payload: encodeEventPayload("/wsdl/B.wsdl", docB)}})...)
	if err := os.WriteFile(filepath.Join(dir, legacyWALFile), wal, 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := OpenStore(StoreConfig{Dir: dir, Shards: 4})
	if err != nil {
		t.Fatalf("migrating open: %v", err)
	}
	if d, err := st.Get("/wsdl/A.wsdl"); err != nil || d.Version != 2 || d.Content != "<a2/>" {
		t.Fatalf("migrated doc A = %+v, %v; want v2 from the WAL tail", d, err)
	}
	if d, err := st.Get("/wsdl/B.wsdl"); err != nil || d.Version != 1 {
		t.Fatalf("migrated doc B = %+v, %v", d, err)
	}
	if got := st.Epoch(); got != 3 {
		t.Errorf("migrated epoch = %d, want 3", got)
	}
	if got := st.Generation(); got != 4 {
		t.Errorf("migrated generation = %d, want 4 (recovered 3, bumped)", got)
	}
	// The retirement floor migrated: republication resumes the sequence.
	if v := st.Publish("/idl/gone.idl", "text/plain", "back"); v != 8 {
		t.Errorf("republished retired path at version %d, want 8", v)
	}
	stats := st.Stats()
	if stats.Durability == nil || stats.Durability.MigratedSources == 0 {
		t.Error("migration not reflected in durability stats")
	}
	// The one-shot migration ends with the legacy files gone.
	for _, name := range []string{legacySnapshotFile, legacyWALFile} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Errorf("legacy file %s survived migration (err=%v)", name, err)
		}
	}
	st.Close()

	// The migrated directory reopens as a plain sharded store.
	st2, err := OpenStore(StoreConfig{Dir: dir, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if d, err := st2.Get("/wsdl/A.wsdl"); err != nil || d.Version != 2 {
		t.Fatalf("post-migration reopen doc A = %+v, %v", d, err)
	}
	if st2.Stats().Durability.MigratedSources != 0 {
		t.Error("second open still reports migrated sources")
	}
}

// TestStatsEndpoint: the Interface Server serves the backing store's
// counters — durability block included — as JSON on StatsPath.
func TestStatsEndpoint(t *testing.T) {
	st, err := OpenStore(StoreConfig{Dir: t.TempDir(), Shards: 2, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sv := NewView(st)
	base, err := sv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	st.Publish("/wsdl/S.wsdl", "text/xml", "<s/>")

	resp, err := http.Get(base + StatsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", StatsPath, resp.StatusCode)
	}
	var got StoreStats
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.WALAppends != 1 || got.Durability == nil {
		t.Fatalf("stats = %+v, want 1 WAL append with a durability block", got)
	}
	if got.Durability.Policy != "always" || got.Durability.Shards != 2 || got.Durability.Fsyncs == 0 {
		t.Fatalf("durability stats = %+v", got.Durability)
	}
}

// TestReshardOnOpen: opening a directory with a different shard count
// reshards it — every document lands in its new shard, the old layout's
// extra files are removed, and shrinking works as well as growing.
func TestReshardOnOpen(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(StoreConfig{Dir: dir, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	const docs = 20
	for i := 0; i < docs; i++ {
		st.Publish(fmt.Sprintf("/wsdl/R%02d.wsdl", i), "text/xml", fmt.Sprintf("<r%d/>", i))
	}
	st.Close()

	for _, k := range []int{2, 5} { // shrink, then grow again
		st, err := OpenStore(StoreConfig{Dir: dir, Shards: k})
		if err != nil {
			t.Fatalf("reshard to %d: %v", k, err)
		}
		for i := 0; i < docs; i++ {
			path := fmt.Sprintf("/wsdl/R%02d.wsdl", i)
			if d, gerr := st.Get(path); gerr != nil || d.Version != 1 {
				t.Fatalf("reshard to %d lost %s: %+v, %v", k, path, d, gerr)
			}
		}
		st.Close()
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if i, perr := parseShardIndex(e.Name(), "snapshot-", ".json"); perr == nil && i >= k {
				t.Errorf("reshard to %d left %s behind", k, e.Name())
			}
			if i, perr := parseShardIndex(e.Name(), "wal-", ".log"); perr == nil && i >= k {
				t.Errorf("reshard to %d left %s behind", k, e.Name())
			}
		}
	}
}
