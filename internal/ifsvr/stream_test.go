package ifsvr

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// startStreamServer publishes an initial version and starts the HTTP view
// over a fresh store, returning the store, the document URL, and a cleanup.
func startStreamServer(t *testing.T, window time.Duration) (*Store, string) {
	t.Helper()
	st := NewStore(window, nil)
	srv := NewView(st)
	base, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		st.Close()
		_ = srv.Close()
	})
	return st, base + "/wsdl/S.wsdl"
}

// TestStreamDeliversEveryCommittedVersion: a stream opened at epoch 0
// carries every committed version in order, live.
func TestStreamDeliversEveryCommittedVersion(t *testing.T) {
	st, url := startStreamServer(t, 0)
	st.PublishVersioned("/wsdl/S.wsdl", "text/xml", "<v1/>", 1)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	var got []uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = WatchStream(ctx, nil, url, 0, func(ev StreamEvent) {
			mu.Lock()
			got = append(got, ev.Doc.Version)
			if len(got) == 5 {
				cancel()
			}
			mu.Unlock()
		})
	}()

	for i := 2; i <= 5; i++ {
		st.PublishVersioned("/wsdl/S.wsdl", "text/xml", fmt.Sprintf("<v%d/>", i), uint64(i))
		time.Sleep(2 * time.Millisecond)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not deliver all versions")
	}
	mu.Lock()
	defer mu.Unlock()
	for i, v := range got {
		if v != uint64(i+1) {
			t.Fatalf("versions = %v, want 1..5 in order", got)
		}
	}
}

// TestStreamStormReconnectNoMissNoDup is the acceptance scenario: a client
// disconnects in the middle of a 100-edit storm and reconnects with
// after=<last seen epoch>; journal replay hands it exactly the versions it
// missed — none skipped, none duplicated. Run under -race.
func TestStreamStormReconnectNoMissNoDup(t *testing.T) {
	st, url := startStreamServer(t, 0)
	st.PublishVersioned("/wsdl/S.wsdl", "text/xml", "<v1/>", 1)

	const storm = 100
	finalVersion := uint64(1 + storm)

	var mu sync.Mutex
	var versions []uint64
	var lastEpoch uint64
	var sawReplay bool
	record := func(ev StreamEvent) {
		mu.Lock()
		versions = append(versions, ev.Doc.Version)
		lastEpoch = ev.Doc.Epoch
		sawReplay = sawReplay || ev.Replayed
		if ev.Snapshot {
			t.Error("replay within journal coverage must not fall back to a snapshot")
		}
		mu.Unlock()
	}

	// First connection: collect some of the storm, then "drop".
	ctx1, cancel1 := context.WithCancel(context.Background())
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		_ = WatchStream(ctx1, nil, url, 0, record)
	}()

	// The storm, concurrent with the watcher.
	stormDone := make(chan struct{})
	go func() {
		defer close(stormDone)
		for i := 1; i <= storm; i++ {
			st.PublishVersioned("/wsdl/S.wsdl", "text/xml", fmt.Sprintf("<e%d/>", i), uint64(i))
			time.Sleep(500 * time.Microsecond)
		}
	}()

	// Disconnect mid-storm: once a few events arrived, kill the stream.
	for {
		mu.Lock()
		n := len(versions)
		mu.Unlock()
		if n >= 10 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel1()
	<-firstDone

	// Reconnect with the last seen epoch; replay must close the gap.
	mu.Lock()
	after := lastEpoch
	mu.Unlock()
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	secondDone := make(chan struct{})
	go func() {
		defer close(secondDone)
		_ = WatchStream(ctx2, nil, url, after, func(ev StreamEvent) {
			record(ev)
			if ev.Doc.Version >= finalVersion {
				cancel2()
			}
		})
	}()
	<-stormDone
	select {
	case <-secondDone:
	case <-time.After(10 * time.Second):
		t.Fatal("reconnected stream did not converge on the final version")
	}

	mu.Lock()
	defer mu.Unlock()
	if !sawReplay {
		t.Error("reconnect during the storm should have been served from journal replay")
	}
	seen := make(map[uint64]bool)
	for _, v := range versions {
		if seen[v] {
			t.Fatalf("version %d delivered twice (versions: %v)", v, versions)
		}
		seen[v] = true
	}
	for v := uint64(1); v <= finalVersion; v++ {
		if !seen[v] {
			t.Fatalf("version %d was never delivered (got %d of %d)", v, len(versions), finalVersion)
		}
	}
}

// TestStreamReplayFallsBackToSnapshot: when the journal has evicted the
// client's epoch, the reconnect opens with one full-snapshot event of the
// current document instead of a (gappy) replay.
func TestStreamReplayFallsBackToSnapshot(t *testing.T) {
	st, url := startStreamServer(t, 0)
	st.SetHistoryLen(8)
	for i := 1; i <= 50; i++ {
		st.PublishVersioned("/wsdl/S.wsdl", "text/xml", fmt.Sprintf("<v%d/>", i), uint64(i))
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := make(chan StreamEvent, 16)
	go func() {
		_ = WatchStream(ctx, nil, url, 1, func(ev StreamEvent) {
			select {
			case events <- ev:
			default:
			}
		})
	}()
	select {
	case ev := <-events:
		if !ev.Snapshot {
			t.Fatalf("first event after eviction = %+v, want a snapshot", ev)
		}
		if ev.Doc.Version != 50 || ev.Doc.Content != "<v50/>" {
			t.Errorf("snapshot doc = %+v, want the current version 50", ev.Doc)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no snapshot event arrived")
	}

	// The stream stays live past the snapshot.
	st.PublishVersioned("/wsdl/S.wsdl", "text/xml", "<v51/>", 51)
	select {
	case ev := <-events:
		if ev.Doc.Version != 51 || ev.Snapshot || ev.Replayed {
			t.Errorf("post-snapshot live event = %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream went dead after the snapshot")
	}
}

// TestStreamChurnUnderEvictingJournal hammers connect/disconnect,
// store-subscriber churn, and publications against a journal small enough
// to evict continuously — every client must still observe strictly
// increasing versions (replays and snapshots included). Run under -race.
func TestStreamChurnUnderEvictingJournal(t *testing.T) {
	st, url := startStreamServer(t, time.Millisecond)
	st.SetHistoryLen(4)
	st.PublishVersioned("/wsdl/S.wsdl", "text/xml", "<v1/>", 1)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Publisher.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 2; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			st.PublishVersioned("/wsdl/S.wsdl", "text/xml", fmt.Sprintf("<v%d/>", i), uint64(i))
			if i%13 == 0 {
				st.Flush()
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Store-subscriber churn alongside the streams.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			cancel := st.Subscribe(func(StoreEvent) {})
			time.Sleep(time.Millisecond)
			cancel()
		}
	}()

	// Churning stream clients: each connection lives ~10ms, then reconnects
	// with its last seen epoch. Versions must never move backwards —
	// whether delivered live, replayed, or (after journal eviction) as the
	// snapshot fallback.
	var monotone atomic.Bool
	monotone.Store(true)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastSeen, lastEpoch uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
				_ = WatchStream(ctx, nil, url, lastEpoch, func(ev StreamEvent) {
					if ev.Doc.Version < lastSeen {
						monotone.Store(false)
					}
					lastSeen = ev.Doc.Version
					lastEpoch = ev.Doc.Epoch
				})
				cancel()
			}
		}()
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if !monotone.Load() {
		t.Error("a stream client observed a version regression across reconnects")
	}
}

// TestStreamOnRepublishedPathSkipsStaleHistory: a stream parked on a
// retired (currently unpublished) path must deliver the republication as
// its first event — not the retired predecessor's stale journal history,
// which is still in the ring (Remove does not purge journal entries).
func TestStreamOnRepublishedPathSkipsStaleHistory(t *testing.T) {
	st, url := startStreamServer(t, 0)
	const path = "/wsdl/S.wsdl"
	for i := 1; i <= 3; i++ {
		st.PublishVersioned(path, "text/xml", fmt.Sprintf("<v%d/>", i), uint64(i))
	}
	st.Remove(path)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := make(chan StreamEvent, 16)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = WatchStream(ctx, nil, url, 0, func(ev StreamEvent) {
			select {
			case events <- ev:
			default:
			}
		})
	}()
	// Let the stream park on the unpublished path, then republish.
	time.Sleep(50 * time.Millisecond)
	st.PublishVersioned(path, "text/xml", "<v4/>", 4)

	select {
	case ev := <-events:
		if ev.Doc.Version != 4 || ev.Doc.Content != "<v4/>" {
			t.Fatalf("first event after republication = %+v, want version 4 (not the retired history)", ev.Doc)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked stream never woke on the republication")
	}
	cancel()
	<-done
}

// TestStreamAgainstLongPollOnlyServer: a server that only speaks the
// long-poll protocol is detected and reported as ErrStreamUnsupported.
func TestStreamAgainstLongPollOnlyServer(t *testing.T) {
	// Simulate an old server: a handler that answers every watch as a
	// long-poll 200 with the raw document.
	old := http.NewServeMux()
	old.HandleFunc("/doc", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/xml")
		w.Header().Set(VersionHeader, "3")
		_, _ = w.Write([]byte("<doc/>"))
	})
	srv := &http.Server{Handler: old}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer func() { _ = srv.Close() }()

	err = WatchStream(context.Background(), nil, "http://"+ln.Addr().String()+"/doc", 0, func(StreamEvent) {
		t.Error("no events expected from a non-streaming server")
	})
	if !errors.Is(err, ErrStreamUnsupported) {
		t.Fatalf("err = %v, want ErrStreamUnsupported", err)
	}
}

// TestPerPathFlushWindows: a path with its own window coalesces on that
// window while sibling paths follow the store default.
func TestPerPathFlushWindows(t *testing.T) {
	st := NewStore(0, nil) // store-wide: immediate commits
	defer st.Close()
	st.SetPathWindow("/hot", 30*time.Millisecond)

	st.Publish("/hot", "text/plain", "h0") // first publication: immediate
	st.Publish("/cold", "text/plain", "c0")

	// A burst against each: the cold path commits every write, the hot
	// path coalesces into one trailing commit.
	for i := 1; i <= 10; i++ {
		st.Publish("/hot", "text/plain", fmt.Sprintf("h%d", i))
		st.Publish("/cold", "text/plain", fmt.Sprintf("c%d", i))
	}
	if v := st.Version("/cold"); v != 11 {
		t.Errorf("cold path version = %d, want 11 (no coalescing)", v)
	}
	if v := st.Version("/hot"); v != 1 {
		t.Errorf("hot path version = %d, want 1 (burst staged)", v)
	}
	deadline := time.Now().Add(5 * time.Second)
	for st.Version("/hot") != 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	d, err := st.Get("/hot")
	if err != nil || d.Version != 2 || d.Content != "h10" {
		t.Fatalf("hot path after window: %+v, %v (want one committed version with the last content)", d, err)
	}
}
