package ifsvr

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// The streaming watch transport.
//
// A long-poll watcher costs one HTTP request per watcher per commit; under
// thousands of watchers the re-request storm dominates. The streaming
// transport holds ONE connection per watcher: a GET with
// "?watch=stream&after=N" is answered with a text/event-stream that first
// replays every version committed after epoch N still in the store's
// journal (catch-up without a document refetch), then carries one event per
// live commit, with comment heartbeats while idle. When the journal no
// longer covers the client's epoch, the stream opens with one full-snapshot
// event instead — the bounded fallback. Both transports sit on the same
// store-side subscription code (Backing.Wait), so the liveness rules live
// in exactly one place.

// StreamContentType is the MIME type of the streaming watch response.
const StreamContentType = "text/event-stream"

// DefaultHeartbeat is how often an idle stream carries a liveness comment.
const DefaultHeartbeat = 15 * time.Second

// ErrStreamUnsupported reports a server that answered a streaming watch
// with something other than an event stream — an older server that only
// speaks the long-poll protocol. Callers degrade to WatchNewer.
var ErrStreamUnsupported = errors.New("ifsvr: server does not support the streaming watch transport")

// Journal is the optional Backing capability the streaming transport's
// catch-up rides on; Store implements it. Without it every (re)connect
// falls back to a full snapshot event.
type Journal interface {
	// Replay returns the committed versions of path with an epoch greater
	// than afterEpoch, oldest first, reporting false when the journal no
	// longer covers that range.
	Replay(path string, afterEpoch uint64) ([]Document, bool)
	// Epoch returns the current commit epoch.
	Epoch() uint64
}

// StreamEvent is one event of a streaming watch, as seen by the client.
type StreamEvent struct {
	// Doc is the committed (or snapshotted) document.
	Doc Document
	// Replayed marks a version served from the store journal during
	// (re)connect catch-up rather than live fan-out.
	Replayed bool
	// Snapshot marks the full-document fallback: the journal no longer
	// covered the client's epoch, so this is the current document, not a
	// step of the committed history.
	Snapshot bool
}

// streamWire is the JSON payload of one SSE data line.
type streamWire struct {
	Path              string `json:"path"`
	Version           uint64 `json:"version"`
	DescriptorVersion uint64 `json:"descriptor_version"`
	Epoch             uint64 `json:"epoch"`
	ContentType       string `json:"content_type,omitempty"`
	Content           string `json:"content,omitempty"`
}

// heartbeat resolves the server's idle-stream comment interval.
func (s *Server) heartbeat() time.Duration {
	if s.HeartbeatInterval > 0 {
		return s.HeartbeatInterval
	}
	return DefaultHeartbeat
}

// serveStream answers "?watch=stream&after=N": an SSE stream of committed
// versions of the requested path — journal replay past epoch N (or one
// snapshot event when the journal fell behind), then live commits, with
// comment heartbeats while idle. The connection is held until the client
// goes away or the store closes.
func (s *Server) serveStream(w http.ResponseWriter, r *http.Request, q url.Values) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	after, _ := strconv.ParseUint(q.Get("after"), 10, 64)
	h := w.Header()
	h.Set("Content-Type", StreamContentType)
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no") // do not let proxies buffer the stream
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	st := s.backing()
	j, hasJournal := st.(Journal)
	path := r.URL.Path

	emit := func(event string, d Document) bool {
		data, err := json.Marshal(streamWire{
			Path:              path,
			Version:           d.Version,
			DescriptorVersion: d.DescriptorVersion,
			Epoch:             d.Epoch,
			ContentType:       d.ContentType,
			Content:           d.Content,
		})
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", d.Epoch, event, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	// Catch-up: replay the journal past the client's epoch, or fall back to
	// one snapshot of the current document. lastVer/lastEpoch are the
	// stream's cursors; every later emit must strictly advance lastVer.
	var lastVer, lastEpoch uint64
	lastEpoch = after
	cur, curErr := st.Get(path)
	switch {
	case curErr == nil && cur.Epoch <= after:
		// The client is already current; open quietly and wait for commits.
		lastVer, lastEpoch = cur.Version, cur.Epoch
	case curErr == nil:
		docs, ok := replay(j, hasJournal, path, after)
		if !ok {
			if !emit("snapshot", cur) {
				return
			}
			lastVer, lastEpoch = cur.Version, cur.Epoch
			break
		}
		for _, d := range docs {
			if d.Version <= lastVer && lastVer != 0 {
				continue
			}
			if !emit("replay", d) {
				return
			}
			lastVer, lastEpoch = d.Version, d.Epoch
		}
	default:
		// Not (yet) published: hold the stream open; the first publication
		// arrives as a live event. lastVer stays 0 so Wait catches it.
	}

	// Live fan-out: park on the store's subscription code (the same Wait
	// the long-poll uses), bounded per round by the heartbeat interval so
	// idle streams still prove liveness.
	hb := s.heartbeat()
	for {
		wctx, cancel := context.WithTimeout(r.Context(), hb)
		d, err := st.Wait(wctx, path, lastVer)
		cancel()
		switch {
		case err == nil:
			// One or more commits landed. The common case — the next
			// version in sequence — is emitted directly; only a real gap
			// (a coalescing store can commit several versions between two
			// wakes of a slow writer) pays the journal scan, and a gap the
			// journal no longer covers degrades to the newest version.
			if d.Version > lastVer+1 && lastVer > 0 {
				if docs, ok := replay(j, hasJournal, path, lastEpoch); ok {
					for _, rd := range docs {
						if rd.Version <= lastVer {
							continue
						}
						if !emit("version", rd) {
							return
						}
						lastVer, lastEpoch = rd.Version, rd.Epoch
					}
					continue
				}
			}
			if d.Version <= lastVer {
				continue
			}
			if !emit("version", d) {
				return
			}
			lastVer, lastEpoch = d.Version, d.Epoch
		case r.Context().Err() != nil:
			return // client went away
		case errors.Is(err, context.DeadlineExceeded):
			if _, werr := io.WriteString(w, ": hb\n\n"); werr != nil {
				return
			}
			fl.Flush()
		default:
			return // store closed
		}
	}
}

// replay narrows the two-value Replay call behind the capability check.
func replay(j Journal, has bool, path string, after uint64) ([]Document, bool) {
	if !has {
		return nil, false
	}
	return j.Replay(path, after)
}

// WatchStream performs one streaming watch against url: it connects with
// "?watch=stream&after=N" (N an epoch, typically the Epoch of the last
// document the caller saw) and invokes fn for every event — replayed
// history first, then live commits — until ctx ends or the connection
// breaks, which is reported as an error so the caller can reconnect with
// its last seen epoch and ride the replay. A server that does not speak the
// streaming transport is reported as ErrStreamUnsupported; callers degrade
// to WatchNewer.
func WatchStream(ctx context.Context, client *http.Client, url string, afterEpoch uint64, fn func(StreamEvent)) error {
	if client == nil {
		client = http.DefaultClient
	}
	sep := "?"
	if strings.ContainsRune(url, '?') {
		sep = "&"
	}
	// The timeout parameter is ignored by streaming servers but makes an
	// older, long-poll-only server answer the probe quickly instead of
	// parking it for a full poll window.
	streamURL := url + sep + "watch=stream&after=" + strconv.FormatUint(afterEpoch, 10) + "&timeout=1s"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, streamURL, nil)
	if err != nil {
		return fmt.Errorf("ifsvr: building stream request for %s: %w", url, err)
	}
	req.Header.Set("Accept", StreamContentType)
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("ifsvr: streaming %s: %w", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("%w: %s", ErrNotFound, url)
	}
	ct := resp.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	if resp.StatusCode != http.StatusOK || !strings.EqualFold(strings.TrimSpace(ct), StreamContentType) {
		return fmt.Errorf("%w (%s answered HTTP %d %s)", ErrStreamUnsupported, url, resp.StatusCode, ct)
	}
	return readStream(ctx, resp.Body, fn)
}

// readStream parses the SSE framing: "field: value" lines accumulate into
// an event dispatched at each blank line; comment lines (heartbeats) are
// skipped. It returns when the stream ends (an error — streams are held
// forever by a healthy server) or ctx is done.
func readStream(ctx context.Context, body io.Reader, fn func(StreamEvent)) error {
	br := bufio.NewReader(body)
	var event, data string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			if ctx.Err() != nil {
				return fmt.Errorf("ifsvr: stream ended: %w", ctx.Err())
			}
			return fmt.Errorf("ifsvr: stream broke: %w", err)
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if data != "" {
				var wire streamWire
				if jerr := json.Unmarshal([]byte(data), &wire); jerr == nil {
					fn(StreamEvent{
						Doc: Document{
							Content:           wire.Content,
							Version:           wire.Version,
							DescriptorVersion: wire.DescriptorVersion,
							Epoch:             wire.Epoch,
							ContentType:       wire.ContentType,
						},
						Replayed: event == "replay",
						Snapshot: event == "snapshot",
					})
				}
			}
			event, data = "", ""
		case strings.HasPrefix(line, ":"):
			// Comment — the server's heartbeat.
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(line[len("event:"):])
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(line[len("data:"):])
		}
	}
}
