package ifsvr

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// The streaming watch transport.
//
// A long-poll watcher costs one HTTP request per watcher per commit; under
// thousands of watchers the re-request storm dominates. The streaming
// transport holds ONE connection per watcher: a GET with
// "?watch=stream&after=N" is answered with a text/event-stream that first
// replays every version committed after epoch N still in the store's
// journal (catch-up without a document refetch), then carries one event per
// live commit, with comment heartbeats while idle. When the journal no
// longer covers the client's epoch, the stream opens with one full-snapshot
// event instead — the bounded fallback. Both transports sit on the same
// store-side subscription code (Backing.Wait), so the liveness rules live
// in exactly one place.

// StreamContentType is the MIME type of the streaming watch response.
const StreamContentType = "text/event-stream"

// DefaultHeartbeat is how often an idle stream carries a liveness comment.
const DefaultHeartbeat = 15 * time.Second

// ErrStreamUnsupported reports a server that answered a streaming watch
// with something other than an event stream — an older server that only
// speaks the long-poll protocol. Callers degrade to WatchNewer.
var ErrStreamUnsupported = errors.New("ifsvr: server does not support the streaming watch transport")

// Journal is the optional Backing capability the streaming transport's
// catch-up rides on; Store implements it. Without it every (re)connect
// falls back to a full snapshot event.
type Journal interface {
	// Replay returns the committed versions of path with an epoch greater
	// than afterEpoch, oldest first, reporting false when the journal no
	// longer covers that range.
	Replay(path string, afterEpoch uint64) ([]Document, bool)
	// Epoch returns the current commit epoch.
	Epoch() uint64
}

// EventJournal is a Journal whose entries carry the commit-time shared
// wire payload (StoreEvent.Payload); Store implements it. The streaming
// transport prefers it: one marshal per commit fans identical bytes out
// to every held connection, instead of one marshal per watcher per event.
type EventJournal interface {
	Journal
	// ReplayEventsInto is Replay returning the journal entries themselves,
	// appended to buf[:0] so a looping caller (one held stream waking per
	// commit) reuses one buffer instead of allocating per wake.
	ReplayEventsInto(path string, afterEpoch uint64, buf []StoreEvent) ([]StoreEvent, bool)
}

// StreamEvent is one event of a streaming watch, as seen by the client.
type StreamEvent struct {
	// Doc is the committed (or snapshotted) document. Its Generation field
	// carries the serving store's restart generation (from the stream
	// response headers; 0 against servers predating it).
	Doc Document
	// Replayed marks a version served from the store journal during
	// (re)connect catch-up rather than live fan-out.
	Replayed bool
	// Snapshot marks the full-document fallback: the journal no longer
	// covered the client's epoch — or, on a generation change, the client
	// was ahead of a restarted store that lost the old state — so this is
	// the current document, not a step of the committed history.
	Snapshot bool
}

// streamWire is the JSON payload of one SSE data line.
type streamWire struct {
	Path              string `json:"path"`
	Version           uint64 `json:"version"`
	DescriptorVersion uint64 `json:"descriptor_version"`
	Epoch             uint64 `json:"epoch"`
	ContentType       string `json:"content_type,omitempty"`
	Content           string `json:"content,omitempty"`
}

// heartbeat resolves the server's idle-stream comment interval.
func (s *Server) heartbeat() time.Duration {
	if s.HeartbeatInterval > 0 {
		return s.HeartbeatInterval
	}
	return DefaultHeartbeat
}

// serveStream answers "?watch=stream&after=N": an SSE stream of committed
// versions of the requested path — journal replay past epoch N (or one
// snapshot event when the journal fell behind), then live commits, with
// comment heartbeats while idle. The connection is held until the client
// goes away or the store closes.
func (s *Server) serveStream(w http.ResponseWriter, r *http.Request, q url.Values) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	after, _ := strconv.ParseUint(q.Get("after"), 10, 64)
	st := s.backing()
	j, hasJournal := st.(Journal)
	path := r.URL.Path

	h := w.Header()
	h.Set("Content-Type", StreamContentType)
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no") // do not let proxies buffer the stream
	startGen := backingGeneration(st)
	if startGen != 0 {
		// The restart generation, readable before the first event: the
		// client's restart detector compares it across (re)connects.
		h.Set(GenerationHeader, strconv.FormatUint(startGen, 10))
	}
	if hasJournal {
		// The store-wide epoch at connect, for cheap cursor resync.
		h.Set(EpochHeader, strconv.FormatUint(j.Epoch(), 10))
	}
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	// emit writes one SSE event. Committed versions arrive with their
	// commit-time shared payload (the same bytes every watcher gets and
	// the WAL carries); payload==nil is the degraded path (snapshots, or
	// a Backing without EventJournal) that marshals per connection. The
	// framing is hand-appended into a per-connection scratch buffer —
	// fmt boxing and per-event framing allocations would be paid once per
	// watcher per commit, the exact multiplier shared payloads remove.
	var frame []byte
	emit := func(event string, d Document, payload []byte) bool {
		if payload == nil {
			payload = encodeEventPayload(path, d)
		}
		frame = frame[:0]
		frame = append(frame, "id: "...)
		frame = strconv.AppendUint(frame, d.Epoch, 10)
		frame = append(frame, "\nevent: "...)
		frame = append(frame, event...)
		frame = append(frame, "\ndata: "...)
		if _, err := w.Write(frame); err != nil {
			return false
		}
		if _, err := w.Write(payload); err != nil {
			return false
		}
		if _, err := io.WriteString(w, "\n\n"); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	// replayEvs returns the journal entries of path past an epoch,
	// payloads included when the backing shares them. evBuf is reused
	// across wakes.
	ej, hasEvents := st.(EventJournal)
	var evBuf []StoreEvent
	replayEvs := func(afterEpoch uint64) ([]StoreEvent, bool) {
		if hasEvents {
			var ok bool
			evBuf, ok = ej.ReplayEventsInto(path, afterEpoch, evBuf[:0])
			return evBuf, ok
		}
		if !hasJournal {
			return nil, false
		}
		docs, ok := j.Replay(path, afterEpoch)
		if !ok {
			return nil, false
		}
		evs := make([]StoreEvent, len(docs))
		for i, d := range docs {
			evs[i] = StoreEvent{Path: path, Doc: d}
		}
		return evs, true
	}

	// Catch-up: replay the journal past the client's epoch, or fall back to
	// one snapshot of the current document. lastVer/lastEpoch are the
	// stream's cursors; every later emit must strictly advance lastVer.
	var lastVer, lastEpoch uint64
	lastEpoch = after
	cur, curErr := st.Get(path)
	switch {
	case curErr == nil && cur.Epoch <= after:
		if hasJournal && after > j.Epoch() {
			// The client's cursor is ahead of the whole store: it watched
			// a previous incarnation whose state this one does not have
			// (a restart without recovery). Hand it the current document
			// as a snapshot — paired with the generation header, that is
			// the client's restart signal — instead of parking it on an
			// epoch this store will never reach.
			if !emit("snapshot", cur, nil) {
				return
			}
		}
		lastVer, lastEpoch = cur.Version, cur.Epoch
	case curErr == nil:
		evs, ok := replayEvs(after)
		if !ok {
			if !emit("snapshot", cur, nil) {
				return
			}
			lastVer, lastEpoch = cur.Version, cur.Epoch
			break
		}
		for _, ev := range evs {
			if ev.Doc.Version <= lastVer && lastVer != 0 {
				continue
			}
			if !emit("replay", ev.Doc, ev.Payload) {
				return
			}
			lastVer, lastEpoch = ev.Doc.Version, ev.Doc.Epoch
		}
	default:
		// Not (yet) published: hold the stream open; the first publication
		// arrives as a live event. lastVer stays 0 so Wait catches it.
	}

	// Live fan-out: park on the store's subscription code (the same Wait
	// the long-poll uses), bounded by the heartbeat interval so idle
	// streams still prove liveness. One heartbeat context spans every
	// commit inside its window — recreating it per wake would charge a
	// context+timer allocation to every watcher on every commit, the
	// same per-watcher multiplier the shared payloads remove.
	hb := s.heartbeat()
	liveWindow := func() (expired, alive bool) {
		wctx, cancel := context.WithTimeout(r.Context(), hb)
		defer cancel()
		for {
			d, err := st.Wait(wctx, path, lastVer)
			switch {
			case err == nil:
				// One or more commits landed. Serve them from the journal
				// so every watcher fans out the commit-time shared bytes
				// (and a coalescing store's multi-version gap stays
				// lossless); a range the journal no longer covers degrades
				// to the newest version, marshaled per connection. A
				// stream parked on a then-unpublished path (lastVer 0)
				// takes the direct path: its cursor says nothing about
				// what it saw, and the journal may hold a retired
				// predecessor's stale history.
				if lastVer > 0 {
					if evs, ok := replayEvs(lastEpoch); ok {
						emitted := false
						for _, ev := range evs {
							if ev.Doc.Version <= lastVer {
								continue
							}
							if !emit("version", ev.Doc, ev.Payload) {
								return false, false
							}
							lastVer, lastEpoch = ev.Doc.Version, ev.Doc.Epoch
							emitted = true
						}
						if emitted {
							continue
						}
					}
				}
				if d.Version <= lastVer {
					continue
				}
				if !emit("version", d, nil) {
					return false, false
				}
				lastVer, lastEpoch = d.Version, d.Epoch
			case r.Context().Err() != nil:
				return false, false // client went away
			case errors.Is(err, context.DeadlineExceeded):
				return true, true // window elapsed; heartbeat and renew
			default:
				return false, false // store closed
			}
		}
	}
	for {
		expired, alive := liveWindow()
		if !alive {
			return
		}
		if startGen != 0 && backingGeneration(st) != startGen {
			// The backing adopted a new generation mid-stream — a replica
			// that reset after its leader restarted. The stream's cursors
			// (and everything already emitted) describe the dead
			// incarnation, so end the stream: the client reconnects, reads
			// the new generation header, and handles it as the ordinary
			// restart signal. Checked once per heartbeat window, not per
			// event — a reset wipes the store, so a stale stream parks
			// rather than emits, and the window bounds the detection lag.
			return
		}
		if expired {
			if _, werr := io.WriteString(w, ": hb\n\n"); werr != nil {
				return
			}
			fl.Flush()
		}
	}
}

// WatchStream performs one streaming watch against url: it connects with
// "?watch=stream&after=N" (N an epoch, typically the Epoch of the last
// document the caller saw) and invokes fn for every event — replayed
// history first, then live commits — until ctx ends or the connection
// breaks, which is reported as an error so the caller can reconnect with
// its last seen epoch and ride the replay. A server that does not speak the
// streaming transport is reported as ErrStreamUnsupported; callers degrade
// to WatchNewer.
func WatchStream(ctx context.Context, client *http.Client, url string, afterEpoch uint64, fn func(StreamEvent)) error {
	if client == nil {
		client = http.DefaultClient
	}
	sep := "?"
	if strings.ContainsRune(url, '?') {
		sep = "&"
	}
	// The timeout parameter is ignored by streaming servers but makes an
	// older, long-poll-only server answer the probe quickly instead of
	// parking it for a full poll window.
	streamURL := url + sep + "watch=stream&after=" + strconv.FormatUint(afterEpoch, 10) + "&timeout=1s"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, streamURL, nil)
	if err != nil {
		return fmt.Errorf("ifsvr: building stream request for %s: %w", url, err)
	}
	req.Header.Set("Accept", StreamContentType)
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("ifsvr: streaming %s: %w", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("%w: %s", ErrNotFound, url)
	}
	ct := resp.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	if resp.StatusCode != http.StatusOK || !strings.EqualFold(strings.TrimSpace(ct), StreamContentType) {
		return fmt.Errorf("%w (%s answered HTTP %d %s)", ErrStreamUnsupported, url, resp.StatusCode, ct)
	}
	return readStream(ctx, resp.Body, headerUint(resp, GenerationHeader), fn)
}

// readStream parses the SSE framing: "field: value" lines accumulate into
// an event dispatched at each blank line; comment lines (heartbeats) are
// skipped. gen is the serving store's restart generation (from the
// response headers), stamped onto every delivered document. It returns
// when the stream ends (an error — streams are held forever by a healthy
// server) or ctx is done.
func readStream(ctx context.Context, body io.Reader, gen uint64, fn func(StreamEvent)) error {
	br := bufio.NewReader(body)
	var event, data string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			if ctx.Err() != nil {
				return fmt.Errorf("ifsvr: stream ended: %w", ctx.Err())
			}
			return fmt.Errorf("ifsvr: stream broke: %w", err)
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if data != "" {
				var wire streamWire
				if jerr := json.Unmarshal([]byte(data), &wire); jerr == nil {
					fn(StreamEvent{
						Doc: Document{
							Content:           wire.Content,
							Version:           wire.Version,
							DescriptorVersion: wire.DescriptorVersion,
							Epoch:             wire.Epoch,
							Generation:        gen,
							ContentType:       wire.ContentType,
						},
						Replayed: event == "replay",
						Snapshot: event == "snapshot",
					})
				}
			}
			event, data = "", ""
		case strings.HasPrefix(line, ":"):
			// Comment — the server's heartbeat.
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(line[len("event:"):])
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(line[len("data:"):])
		}
	}
}
