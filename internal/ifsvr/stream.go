package ifsvr

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"
)

// The streaming watch transport.
//
// A long-poll watcher costs one HTTP request per watcher per commit; under
// thousands of watchers the re-request storm dominates. The streaming
// transport holds ONE connection per watcher: a GET with
// "?watch=stream&after=N" is answered with a text/event-stream that first
// replays every version committed after epoch N still in the store's
// journal (catch-up without a document refetch), then carries one event per
// live commit, with comment heartbeats while idle. When the journal no
// longer covers the client's epoch, the stream opens with one full-snapshot
// event instead — the bounded fallback.
//
// Against the native Store, each held connection runs a DELIVERY PUMP
// (pumpStream): a commit only nudges the pump's wake channel, and the
// pump advances its own epoch cursor through the store journal, writing
// every pending event as one batch per flush. The committing goroutine
// therefore never writes to a socket, a slow peer lags only itself, and
// backpressure is explicit: a cursor below the journal floor gets a
// mid-stream snapshot reset, while a peer that misses its write deadline
// or exceeds the server's lag budget is evicted with a terminal
// "eviction" event and reconnects through ordinary replay. Foreign
// Backings keep the generic Wait-driven loop.

// StreamContentType is the MIME type of the streaming watch response.
const StreamContentType = "text/event-stream"

// DefaultHeartbeat is how often an idle stream carries a liveness comment.
const DefaultHeartbeat = 15 * time.Second

// ErrStreamUnsupported reports a server that answered a streaming watch
// with something other than an event stream — an older server that only
// speaks the long-poll protocol. Callers degrade to WatchNewer.
var ErrStreamUnsupported = errors.New("ifsvr: server does not support the streaming watch transport")

// ErrStreamEvicted reports a streaming watch the server terminated for
// backpressure: the client fell past the server's lag budget and was
// dropped with a terminal "eviction" event. Reconnecting with the last
// seen epoch rides the ordinary replay path (or its snapshot fallback),
// so the right response is the same reconnect loop as any broken stream —
// the error exists so clients can count the evictions they caused.
var ErrStreamEvicted = errors.New("ifsvr: stream evicted by server backpressure")

// ErrStreamDraining reports a streaming watch the server ended with a
// terminal "draining" event because it is shutting down gracefully. The
// stream's cursors are intact; the right response is an immediate
// reconnect against another replica (the watch client's endpoint rotation
// does exactly that), not a backoff — the server told us to go, we did
// not fail.
var ErrStreamDraining = errors.New("ifsvr: stream ended by server drain")

// Journal is the optional Backing capability the streaming transport's
// catch-up rides on; Store implements it. Without it every (re)connect
// falls back to a full snapshot event.
type Journal interface {
	// Replay returns the committed versions of path with an epoch greater
	// than afterEpoch, oldest first, reporting false when the journal no
	// longer covers that range.
	Replay(path string, afterEpoch uint64) ([]Document, bool)
	// Epoch returns the current commit epoch.
	Epoch() uint64
}

// EventJournal is a Journal whose entries carry the commit-time shared
// wire payload (StoreEvent.Payload); Store implements it. The streaming
// transport prefers it: one marshal per commit fans identical bytes out
// to every held connection, instead of one marshal per watcher per event.
type EventJournal interface {
	Journal
	// ReplayEventsInto is Replay returning the journal entries themselves,
	// appended to buf[:0] so a looping caller (one held stream waking per
	// commit) reuses one buffer instead of allocating per wake.
	ReplayEventsInto(path string, afterEpoch uint64, buf []StoreEvent) ([]StoreEvent, bool)
}

// StreamEvent is one event of a streaming watch, as seen by the client.
type StreamEvent struct {
	// Doc is the committed (or snapshotted) document. Its Generation field
	// carries the serving store's restart generation (from the stream
	// response headers; 0 against servers predating it).
	Doc Document
	// Replayed marks a version served from the store journal during
	// (re)connect catch-up rather than live fan-out.
	Replayed bool
	// Snapshot marks the full-document fallback: the journal no longer
	// covered the client's epoch — or, on a generation change, the client
	// was ahead of a restarted store that lost the old state — so this is
	// the current document, not a step of the committed history.
	Snapshot bool
}

// streamWire is the JSON payload of one SSE data line.
type streamWire struct {
	Path              string `json:"path"`
	Version           uint64 `json:"version"`
	DescriptorVersion uint64 `json:"descriptor_version"`
	Epoch             uint64 `json:"epoch"`
	ContentType       string `json:"content_type,omitempty"`
	Content           string `json:"content,omitempty"`
}

// heartbeat resolves the server's idle-stream comment interval.
func (s *Server) heartbeat() time.Duration {
	if s.HeartbeatInterval > 0 {
		return s.HeartbeatInterval
	}
	return DefaultHeartbeat
}

// serveStream answers "?watch=stream&after=N": an SSE stream of committed
// versions of the requested path — journal replay past epoch N (or one
// snapshot event when the journal fell behind), then live commits, with
// comment heartbeats while idle. The connection is held until the client
// goes away or the store closes.
func (s *Server) serveStream(w http.ResponseWriter, r *http.Request, q url.Values) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	after, _ := strconv.ParseUint(q.Get("after"), 10, 64)
	st := s.backing()
	j, hasJournal := st.(Journal)
	path := r.URL.Path

	h := w.Header()
	h.Set("Content-Type", StreamContentType)
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no") // do not let proxies buffer the stream
	startGen := backingGeneration(st)
	if startGen != 0 {
		// The restart generation, readable before the first event: the
		// client's restart detector compares it across (re)connects.
		h.Set(GenerationHeader, strconv.FormatUint(startGen, 10))
	}
	if hasJournal {
		// The store-wide epoch at connect, for cheap cursor resync.
		h.Set(EpochHeader, strconv.FormatUint(j.Epoch(), 10))
	}
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	if store, isStore := st.(*Store); isStore {
		// The native Store gets the delivery-pump path: cursor-driven
		// batched delivery with explicit backpressure. The generic
		// Wait-driven loop below stays for foreign Backings.
		s.pumpStream(w, r, store, path, after, startGen)
		return
	}

	// emit writes one SSE event. Committed versions arrive with their
	// commit-time shared payload (the same bytes every watcher gets and
	// the WAL carries); payload==nil is the degraded path (snapshots, or
	// a Backing without EventJournal) that marshals per connection. The
	// framing is hand-appended into a per-connection scratch buffer —
	// fmt boxing and per-event framing allocations would be paid once per
	// watcher per commit, the exact multiplier shared payloads remove.
	var frame []byte
	emit := func(event string, d Document, payload []byte) bool {
		if payload == nil {
			payload = encodeEventPayload(path, d)
		}
		frame = frame[:0]
		frame = append(frame, "id: "...)
		frame = strconv.AppendUint(frame, d.Epoch, 10)
		frame = append(frame, "\nevent: "...)
		frame = append(frame, event...)
		frame = append(frame, "\ndata: "...)
		if _, err := w.Write(frame); err != nil {
			return false
		}
		if _, err := w.Write(payload); err != nil {
			return false
		}
		if _, err := io.WriteString(w, "\n\n"); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	// replayEvs returns the journal entries of path past an epoch,
	// payloads included when the backing shares them. evBuf is reused
	// across wakes.
	ej, hasEvents := st.(EventJournal)
	var evBuf []StoreEvent
	replayEvs := func(afterEpoch uint64) ([]StoreEvent, bool) {
		if hasEvents {
			var ok bool
			evBuf, ok = ej.ReplayEventsInto(path, afterEpoch, evBuf[:0])
			return evBuf, ok
		}
		if !hasJournal {
			return nil, false
		}
		docs, ok := j.Replay(path, afterEpoch)
		if !ok {
			return nil, false
		}
		evs := make([]StoreEvent, len(docs))
		for i, d := range docs {
			evs[i] = StoreEvent{Path: path, Doc: d}
		}
		return evs, true
	}

	// Catch-up: replay the journal past the client's epoch, or fall back to
	// one snapshot of the current document. lastVer/lastEpoch are the
	// stream's cursors; every later emit must strictly advance lastVer.
	var lastVer, lastEpoch uint64
	lastEpoch = after
	cur, curErr := st.Get(path)
	switch {
	case curErr == nil && cur.Epoch <= after:
		if hasJournal && after > j.Epoch() {
			// The client's cursor is ahead of the whole store: it watched
			// a previous incarnation whose state this one does not have
			// (a restart without recovery). Hand it the current document
			// as a snapshot — paired with the generation header, that is
			// the client's restart signal — instead of parking it on an
			// epoch this store will never reach.
			if !emit("snapshot", cur, nil) {
				return
			}
		}
		lastVer, lastEpoch = cur.Version, cur.Epoch
	case curErr == nil:
		evs, ok := replayEvs(after)
		if !ok {
			if !emit("snapshot", cur, nil) {
				return
			}
			lastVer, lastEpoch = cur.Version, cur.Epoch
			break
		}
		for _, ev := range evs {
			if ev.Doc.Version <= lastVer && lastVer != 0 {
				continue
			}
			if !emit("replay", ev.Doc, ev.Payload) {
				return
			}
			lastVer, lastEpoch = ev.Doc.Version, ev.Doc.Epoch
		}
	default:
		// Not (yet) published: hold the stream open; the first publication
		// arrives as a live event. lastVer stays 0 so Wait catches it.
	}

	// Live fan-out: park on the store's subscription code (the same Wait
	// the long-poll uses), bounded by the heartbeat interval so idle
	// streams still prove liveness. One heartbeat context spans every
	// commit inside its window — recreating it per wake would charge a
	// context+timer allocation to every watcher on every commit, the
	// same per-watcher multiplier the shared payloads remove.
	hb := s.heartbeat()
	drain := s.drainContext()
	liveWindow := func() (expired, alive bool) {
		wctx, cancel := context.WithTimeout(r.Context(), hb)
		defer cancel()
		// A drain unparks the Wait below so the stream can end with its
		// terminal frame instead of holding Shutdown for a full window.
		stopDrain := context.AfterFunc(drain, cancel)
		defer stopDrain()
		for {
			d, err := st.Wait(wctx, path, lastVer)
			switch {
			case err == nil:
				// One or more commits landed. Serve them from the journal
				// so every watcher fans out the commit-time shared bytes
				// (and a coalescing store's multi-version gap stays
				// lossless); a range the journal no longer covers degrades
				// to the newest version, marshaled per connection. A
				// stream parked on a then-unpublished path (lastVer 0)
				// takes the direct path: its cursor says nothing about
				// what it saw, and the journal may hold a retired
				// predecessor's stale history.
				if lastVer > 0 {
					if evs, ok := replayEvs(lastEpoch); ok {
						emitted := false
						for _, ev := range evs {
							if ev.Doc.Version <= lastVer {
								continue
							}
							if !emit("version", ev.Doc, ev.Payload) {
								return false, false
							}
							lastVer, lastEpoch = ev.Doc.Version, ev.Doc.Epoch
							emitted = true
						}
						if emitted {
							continue
						}
					}
				}
				if d.Version <= lastVer {
					continue
				}
				if !emit("version", d, nil) {
					return false, false
				}
				lastVer, lastEpoch = d.Version, d.Epoch
			case r.Context().Err() != nil:
				return false, false // client went away
			case errors.Is(err, context.DeadlineExceeded):
				return true, true // window elapsed; heartbeat and renew
			default:
				return false, false // store closed
			}
		}
	}
	for {
		expired, alive := liveWindow()
		if !alive {
			if drain.Err() != nil && r.Context().Err() == nil {
				// Graceful shutdown with the client still connected: the
				// terminal frame tells it to reconnect to another replica
				// right away instead of waiting out a broken connection.
				_, _ = io.WriteString(w, "event: draining\ndata: {}\n\n")
				fl.Flush()
			}
			return
		}
		if startGen != 0 && backingGeneration(st) != startGen {
			// The backing adopted a new generation mid-stream — a replica
			// that reset after its leader restarted. The stream's cursors
			// (and everything already emitted) describe the dead
			// incarnation, so end the stream: the client reconnects, reads
			// the new generation header, and handles it as the ordinary
			// restart signal. Checked once per heartbeat window, not per
			// event — a reset wipes the store, so a stale stream parks
			// rather than emits, and the window bounds the detection lag.
			return
		}
		if expired {
			if _, werr := io.WriteString(w, ": hb\n\n"); werr != nil {
				return
			}
			fl.Flush()
		}
	}
}

// pumpStream is the delivery-pump body of a streaming watch against the
// native Store. The connection owns an epoch cursor; a commit to the
// watched path only nudges the pump's capacity-1 wake channel (see
// Store.fanOut), and each wake drains EVERYTHING pending behind the
// cursor from the journal in one batch — one Flush syscall per batch, not
// per event — under a per-write deadline. Backpressure is explicit:
//
//   - cursor below the journal floor → one mid-stream "snapshot" event of
//     the current document (a reset, counted in FanoutStats.Resets);
//   - pending events past Server.MaxWatcherLag → terminal "eviction"
//     event and disconnect (FanoutStats.Evictions);
//   - a write or flush missing Server.StreamWriteTimeout with the client
//     still connected → disconnect, also counted as an eviction.
//
// Idle liveness comments ride the server's shared PumpSweep instead of a
// per-connection timer.
func (s *Server) pumpStream(w http.ResponseWriter, r *http.Request, st *Store, path string, after, startGen uint64) {
	st.fanout.streams.Add(1)
	rc := http.NewResponseController(w)
	wt := s.streamWriteTimeout()
	budget := s.MaxWatcherLag
	hb := s.heartbeat()

	// Register the wake BEFORE the catch-up read: a commit landing between
	// the two must nudge the pump, not vanish. The capacity-1 channel
	// absorbs wakes that arrive while the pump is busy writing.
	p := NewPump()
	cancel := st.watchPath(path, p.WakeChan())
	defer cancel()
	sweep := s.pumpSweep()
	sweep.Add(p)
	defer sweep.Remove(p)

	// arm sets the next writes' shared deadline; a peer that cannot absorb
	// a batch within it makes the write fail instead of pinning the pump.
	arm := func() {
		if wt > 0 {
			_ = rc.SetWriteDeadline(time.Now().Add(wt))
		}
	}
	// write appends one SSE event into the reused frame buffer and writes
	// it (buffered; the batch reaches the socket at the next flush).
	var frame []byte
	write := func(event string, d Document, payload []byte) error {
		if payload == nil {
			payload = encodeEventPayload(path, d)
		}
		frame = frame[:0]
		frame = append(frame, "id: "...)
		frame = strconv.AppendUint(frame, d.Epoch, 10)
		frame = append(frame, "\nevent: "...)
		frame = append(frame, event...)
		frame = append(frame, "\ndata: "...)
		frame = append(frame, payload...)
		frame = append(frame, "\n\n"...)
		_, err := w.Write(frame)
		return err
	}
	// flush pushes the accumulated batch to the socket; n > 0 records a
	// delivery batch of that many events.
	flush := func(n int) error {
		if err := rc.Flush(); err != nil {
			return err
		}
		p.Touch()
		if n > 0 {
			st.fanout.noteBatch(n)
		}
		return nil
	}
	// evicted classifies a failed write. A missed write deadline is ALWAYS
	// an eviction — the error check matters because the http server
	// cancels the request context on any connection write error, so by the
	// time this runs a deadline miss is indistinguishable from a hangup by
	// the context alone. A dead context without a deadline error is the
	// client hanging up (not backpressure).
	evicted := func(err error) {
		if errors.Is(err, os.ErrDeadlineExceeded) || r.Context().Err() == nil {
			st.fanout.evictions.Add(1)
		}
	}
	// emit1 arms the deadline, writes one event, and flushes it as a batch
	// of one — the single-event delivery every non-batch site uses.
	emit1 := func(event string, d Document, payload []byte) bool {
		arm()
		err := write(event, d, payload)
		if err == nil {
			err = flush(1)
		}
		if err != nil {
			evicted(err)
			return false
		}
		return true
	}

	// Catch-up, one batch: journal replay past the client's epoch, or the
	// snapshot fallback. lastVer/lastEpoch are the pump's cursors; every
	// later write must strictly advance lastVer.
	var lastVer, lastEpoch uint64
	lastEpoch = after
	virgin := false
	var evBuf []StoreEvent
	cur, curErr := st.Get(path)
	switch {
	case curErr == nil && cur.Epoch <= after:
		if after > st.Epoch() {
			// Ahead of the whole store: the client watched an incarnation
			// this store does not have. The snapshot (with the generation
			// header) is its restart signal.
			if !emit1("snapshot", cur, nil) {
				return
			}
		}
		lastVer, lastEpoch = cur.Version, cur.Epoch
	case curErr == nil:
		var ok bool
		evBuf, ok = st.ReplayEventsInto(path, after, evBuf[:0])
		if !ok {
			if !emit1("snapshot", cur, nil) {
				return
			}
			lastVer, lastEpoch = cur.Version, cur.Epoch
			break
		}
		arm()
		n := 0
		for _, ev := range evBuf {
			if ev.Doc.Version <= lastVer && lastVer != 0 {
				continue
			}
			if err := write("replay", ev.Doc, ev.Payload); err != nil {
				evicted(err)
				return
			}
			lastVer, lastEpoch = ev.Doc.Version, ev.Doc.Epoch
			n++
		}
		if n > 0 {
			if err := flush(n); err != nil {
				evicted(err)
				return
			}
		}
	default:
		// Not (yet) published: hold the stream open. The journal may hold
		// a retired predecessor's history under this path, so the first
		// wake serves the current document directly instead of replaying.
		virgin = true
	}

	// The pump loop: block on the wake channel, drain, repeat.
	drained := s.drainContext().Done()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-drained:
			// Graceful shutdown: end the held stream with the terminal
			// frame so the client reconnects to another replica with its
			// cursors intact (ordinary replay catch-up) instead of timing
			// out against a dead connection.
			arm()
			_, _ = io.WriteString(w, "event: draining\ndata: {}\n\n")
			_ = rc.Flush()
			return
		case <-p.WakeChan():
		}
		view := st.pumpCollect(path, lastEpoch, evBuf[:0])
		evBuf = view.events
		if view.closed {
			return
		}
		if startGen != 0 && view.gen != startGen {
			// The backing adopted a new generation mid-stream — a replica
			// that reset after its leader restarted. Everything emitted
			// describes the dead incarnation; end the stream so the client
			// reconnects and reads the new generation header.
			return
		}
		switch {
		case virgin:
			if d, err := st.Get(path); err == nil && d.Version > lastVer {
				if !emit1("version", d, nil) {
					return
				}
				lastVer, lastEpoch = d.Version, d.Epoch
				virgin = false
			}
		case !view.ok:
			// The cursor fell below the journal floor: the bounded
			// catch-up history is gone, so reset the stream from the
			// current document instead of buffering the gap.
			if d, err := st.Get(path); err == nil && d.Version > lastVer {
				st.fanout.resets.Add(1)
				if !emit1("snapshot", d, nil) {
					return
				}
				lastVer, lastEpoch = d.Version, d.Epoch
			} else {
				lastEpoch = view.epoch
			}
		default:
			if budget > 0 && len(evBuf) > budget {
				// Lag budget exceeded: hand the peer the terminal event
				// and disconnect — it reconnects through ordinary replay
				// (or its snapshot fallback) and catches up at its own
				// pace without holding journal history for everyone else.
				st.fanout.evictions.Add(1)
				arm()
				fmt.Fprintf(w, "event: eviction\ndata: {\"pending\":%d,\"budget\":%d}\n\n", len(evBuf), budget)
				_ = rc.Flush()
				return
			}
			n := 0
			if len(evBuf) > 0 {
				arm()
			}
			for _, ev := range evBuf {
				if ev.Doc.Version <= lastVer {
					continue
				}
				if err := write("version", ev.Doc, ev.Payload); err != nil {
					evicted(err)
					return
				}
				lastVer = ev.Doc.Version
				n++
			}
			lastEpoch = view.epoch
			if n > 0 {
				if err := flush(n); err != nil {
					evicted(err)
					return
				}
			}
		}
		// A sweep nudge with nothing to deliver: prove liveness when due.
		if p.Idle() >= hb {
			arm()
			_, err := io.WriteString(w, ": hb\n\n")
			if err == nil {
				err = flush(0)
			}
			if err != nil {
				evicted(err)
				return
			}
			st.fanout.heartbeats.Add(1)
		}
	}
}

// WatchStream performs one streaming watch against url: it connects with
// "?watch=stream&after=N" (N an epoch, typically the Epoch of the last
// document the caller saw) and invokes fn for every event — replayed
// history first, then live commits — until ctx ends or the connection
// breaks, which is reported as an error so the caller can reconnect with
// its last seen epoch and ride the replay. A server that does not speak the
// streaming transport is reported as ErrStreamUnsupported; callers degrade
// to WatchNewer.
func WatchStream(ctx context.Context, client *http.Client, url string, afterEpoch uint64, fn func(StreamEvent)) error {
	if client == nil {
		client = http.DefaultClient
	}
	sep := "?"
	if strings.ContainsRune(url, '?') {
		sep = "&"
	}
	// The timeout parameter is ignored by streaming servers but makes an
	// older, long-poll-only server answer the probe quickly instead of
	// parking it for a full poll window.
	streamURL := url + sep + "watch=stream&after=" + strconv.FormatUint(afterEpoch, 10) + "&timeout=1s"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, streamURL, nil)
	if err != nil {
		return fmt.Errorf("ifsvr: building stream request for %s: %w", url, err)
	}
	req.Header.Set("Accept", StreamContentType)
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("ifsvr: streaming %s: %w", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("%w: %s", ErrNotFound, url)
	}
	ct := resp.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	if resp.StatusCode != http.StatusOK || !strings.EqualFold(strings.TrimSpace(ct), StreamContentType) {
		return fmt.Errorf("%w (%s answered HTTP %d %s)", ErrStreamUnsupported, url, resp.StatusCode, ct)
	}
	return readStream(ctx, resp.Body, headerUint(resp, GenerationHeader), fn)
}

// readStream parses the SSE framing: "field: value" lines accumulate into
// an event dispatched at each blank line; comment lines (heartbeats) are
// skipped. gen is the serving store's restart generation (from the
// response headers), stamped onto every delivered document. It returns
// when the stream ends (an error — streams are held forever by a healthy
// server) or ctx is done.
func readStream(ctx context.Context, body io.Reader, gen uint64, fn func(StreamEvent)) error {
	br := bufio.NewReader(body)
	var event, data string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			if ctx.Err() != nil {
				return fmt.Errorf("ifsvr: stream ended: %w", ctx.Err())
			}
			return fmt.Errorf("ifsvr: stream broke: %w", err)
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if event == "eviction" {
				// Terminal backpressure event: the server dropped this
				// stream for lagging. Reconnect-with-replay is the cure,
				// same as any broken stream — the sentinel lets the caller
				// count it.
				return fmt.Errorf("%w: %s", ErrStreamEvicted, data)
			}
			if event == "draining" {
				// Terminal graceful-shutdown event: reconnect immediately
				// (to the next replica) with the last seen epoch.
				return ErrStreamDraining
			}
			if data != "" {
				var wire streamWire
				if jerr := json.Unmarshal([]byte(data), &wire); jerr == nil {
					fn(StreamEvent{
						Doc: Document{
							Content:           wire.Content,
							Version:           wire.Version,
							DescriptorVersion: wire.DescriptorVersion,
							Epoch:             wire.Epoch,
							Generation:        gen,
							ContentType:       wire.ContentType,
						},
						Replayed: event == "replay",
						Snapshot: event == "snapshot",
					})
				}
			}
			event, data = "", ""
		case strings.HasPrefix(line, ":"):
			// Comment — the server's heartbeat.
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(line[len("event:"):])
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(line[len("data:"):])
		}
	}
}
