package ifsvr

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// buildTortureDir publishes batches 1..n into a durable single-shard
// store with the snapshot cadence pushed out, so everything past the
// open-time snapshot sits in the WAL, then crashes it (no parting
// snapshot). It returns the data dir and the WAL image. Single-shard
// keeps the K=1 recovery path covered; the K>1 equivalent is
// TestShardTorture.
func buildTortureDir(t *testing.T, n int) (string, []byte) {
	t.Helper()
	dir := t.TempDir()
	st, err := OpenStore(StoreConfig{Dir: dir, SnapshotEvery: 1 << 20, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		st.PublishVersioned("/wsdl/T.wsdl", "text/xml", fmt.Sprintf("<v%d/>", i), uint64(i))
	}
	if err := st.Crash(); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(filepath.Join(dir, shardWALFile(0)))
	if err != nil {
		t.Fatal(err)
	}
	if len(img) == 0 {
		t.Fatal("WAL unexpectedly empty")
	}
	return dir, img
}

// lastRecordStart locates the byte offset of the final WAL record.
func lastRecordStart(t *testing.T, img []byte) int {
	t.Helper()
	recs, valid := scanWAL(img)
	if valid != len(img) || len(recs) == 0 {
		t.Fatalf("torture WAL image not fully valid: %d records, %d/%d bytes", len(recs), valid, len(img))
	}
	offset := 0
	for i := 0; i < len(recs)-1; i++ {
		_, n, _ := decodeWALRecord(img[offset:])
		offset += n
	}
	return offset
}

// reopen recovers the store from dir and returns the recovered version of
// the torture path plus the epoch.
func reopenTorture(t *testing.T, dir string) (version, epoch uint64) {
	t.Helper()
	st, err := OpenStore(StoreConfig{Dir: dir, Shards: 1})
	if err != nil {
		t.Fatalf("open after torture: %v", err)
	}
	defer st.Close()
	return st.Version("/wsdl/T.wsdl"), st.Epoch()
}

// TestWALTortureTruncate truncates the WAL at every byte offset inside the
// last record (including mid-header) and asserts recovery comes up clean
// with the longest valid prefix: every batch before the damaged one, and
// never an error.
func TestWALTortureTruncate(t *testing.T) {
	const batches = 6
	dir, img := buildTortureDir(t, batches)
	last := lastRecordStart(t, img)
	walPath := filepath.Join(dir, shardWALFile(0))
	snapPath := filepath.Join(dir, shardSnapshotFile(0))
	snap, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}

	for cut := last; cut < len(img); cut++ {
		if err := os.WriteFile(walPath, img[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(snapPath, snap, 0o644); err != nil {
			t.Fatal(err)
		}
		version, epoch := reopenTorture(t, dir)
		if version != batches-1 || epoch != batches-1 {
			t.Fatalf("truncate at %d: recovered version %d epoch %d, want %d/%d (longest valid prefix)",
				cut, version, epoch, batches-1, batches-1)
		}
	}
}

// TestWALTortureCorrupt flips every byte of the last record in place and
// asserts recovery still comes up clean: the CRC rejects the damaged
// record and the longest valid prefix wins — a flipped byte degrades to
// truncation, never to serving corrupt state.
func TestWALTortureCorrupt(t *testing.T) {
	const batches = 6
	dir, img := buildTortureDir(t, batches)
	last := lastRecordStart(t, img)
	walPath := filepath.Join(dir, shardWALFile(0))
	snapPath := filepath.Join(dir, shardSnapshotFile(0))
	snap, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}

	for off := last; off < len(img); off++ {
		mut := bytes.Clone(img)
		mut[off] ^= 0xFF
		if err := os.WriteFile(walPath, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(snapPath, snap, 0o644); err != nil {
			t.Fatal(err)
		}
		version, _ := reopenTorture(t, dir)
		if version != batches-1 {
			t.Fatalf("corrupt byte at %d: recovered version %d, want %d (longest valid prefix)",
				off, version, batches-1)
		}
	}
}

// TestWALRecoveryTruncatesTornTail: after recovering past a torn tail, the
// WAL file itself is truncated to the valid prefix, so the next incarnation
// appends valid records instead of extending garbage.
func TestWALRecoveryTruncatesTornTail(t *testing.T) {
	const batches = 4
	dir, img := buildTortureDir(t, batches)
	last := lastRecordStart(t, img)
	walPath := filepath.Join(dir, shardWALFile(0))
	cut := last + (len(img)-last)/2
	if err := os.WriteFile(walPath, img[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := OpenStore(StoreConfig{Dir: dir, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	st.Publish("/wsdl/T.wsdl", "text/xml", "<after-recovery/>")
	st.Close()

	st2, err := OpenStore(StoreConfig{Dir: dir, Shards: 1})
	if err != nil {
		t.Fatalf("reopen after torn-tail recovery: %v", err)
	}
	defer st2.Close()
	d, err := st2.Get("/wsdl/T.wsdl")
	if err != nil || d.Content != "<after-recovery/>" || d.Version != batches {
		t.Fatalf("doc after torn-tail cycle = %+v, %v; want version %d content <after-recovery/>", d, err, batches)
	}
}

// TestWALRecoverySkipsSnapshottedRecords pins the snapshot/WAL crash
// window: a crash between the snapshot rename and the WAL reset leaves
// already-covered records in the log. Replaying them must be a no-op —
// in particular a lingering Remove record must NOT delete a document the
// snapshot legitimately contains (the lsn guard).
func TestWALRecoverySkipsSnapshottedRecords(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(StoreConfig{Dir: dir, SnapshotEvery: 1 << 20, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	st.Publish("/p", "text/plain", "v1")
	st.Remove("/p")
	st.Publish("/p", "text/plain", "v2") // resumes the sequence: version 2
	walPath := filepath.Join(dir, shardWALFile(0))
	img, err := os.ReadFile(walPath) // publish, remove, publish records
	if err != nil {
		t.Fatal(err)
	}
	st.Close() // snapshot written (docs contain /p@v2), WAL reset

	// The crash window: snapshot in place, WAL reset lost.
	if err := os.WriteFile(walPath, img, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenStore(StoreConfig{Dir: dir, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	d, err := st2.Get("/p")
	if err != nil || d.Version != 2 || d.Content != "v2" {
		t.Fatalf("doc after crash-window recovery = %+v, %v; the lingering Remove record must not win over the snapshot", d, err)
	}
}

// FuzzWALDecode drives the WAL record decoder with arbitrary bytes: it
// must never panic, must never claim more bytes than it was given, and
// every record it accepts must re-encode to exactly the bytes it was
// decoded from (so recovery cannot silently rewrite history).
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a wal"))
	doc := Document{Content: "<v1/>", ContentType: "text/xml", Version: 1, DescriptorVersion: 1, Epoch: 1}
	rec := encodeCommitRecord(1, []StoreEvent{{Path: "/p", Doc: doc, Payload: encodeEventPayload("/p", doc)}})
	f.Add(rec)
	f.Add(append(bytes.Clone(rec), encodeRemoveRecord(2, "/p", 1)...))
	f.Add(rec[:len(rec)-3])
	// The sharded framing: a shard-header record leading a data record, as
	// every shard WAL file begins, plus a header from a different layout.
	f.Add(append(encodeShardHeaderRecord(0, 8), rec...))
	f.Add(encodeShardHeaderRecord(7, 8))
	f.Add(encodeShardHeaderRecord(3, 4)[:walHeaderLen+2])

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid := scanWAL(data)
		if valid > len(data) {
			t.Fatalf("scanWAL claimed %d of %d bytes", valid, len(data))
		}
		// Round-trip: re-framing the decoded records must reproduce the
		// valid prefix byte for byte.
		var rebuilt []byte
		for _, r := range recs {
			rebuilt = appendWALRecord(rebuilt, r.kind, r.payload)
		}
		if !bytes.Equal(rebuilt, data[:valid]) {
			t.Fatalf("decoded records re-encode to %d bytes != valid prefix %d", len(rebuilt), valid)
		}
		// Semantic decode of accepted commit records must not panic either.
		for _, r := range recs {
			if r.kind == walKindCommit {
				_, _, _ = decodeCommitPayload(r.payload)
			}
		}
	})
}
