package ifsvr

import (
	"encoding/json"
	"sort"
)

// The replication seam: what the internal/repl package needs from the
// publication store without reaching into its internals.
//
// A replication LEADER observes every logged operation through
// SubscribeOps — commit batches with their commit-time shared wire
// payloads, and retirements — and ships them to followers as CRC-framed
// records (the WAL record format, re-used as the wire format so the two
// encoders cannot drift). A replication FOLLOWER feeds received records
// back in through ApplyReplicated / ApplyReplicatedRemove, which run the
// ordinary commit machinery (journal, fan-out, optional persistence) but
// install the leader's versions and epochs verbatim instead of assigning
// new ones — so a watcher on a follower sees byte-identical events, at
// identical epochs, under the leader's restart generation
// (AdoptGeneration), and fail-over between replicas looks like an
// ordinary reconnect rather than a state-loss restart.

// StoreOp is one logged store operation delivered to SubscribeOps: either
// a committed publication batch (Events non-empty) or a retirement
// (RemovePath non-empty).
type StoreOp struct {
	// Events is the committed batch, in commit order, payloads included.
	Events []StoreEvent
	// RemovePath is the retired path (empty for a commit batch).
	RemovePath string
	// RemoveVersion is the retired path's last committed version — the
	// floor a republication resumes from.
	RemoveVersion uint64
}

// SubscribeOps registers fn for every logged operation — committed
// batches AND retirements, unlike Subscribe which sees only committed
// versions — and returns a cancel function. Delivery runs on the
// committing goroutine in commit order (under the same ordering lock as
// watcher fan-out); fn must not call back into the store's publish,
// flush, or apply paths.
func (s *Store) SubscribeOps(fn func(StoreOp)) (cancel func()) {
	s.mu.Lock()
	if s.opsSubs == nil {
		s.opsSubs = make(map[uint64]func(StoreOp))
	}
	id := s.nextOpsSub
	s.nextOpsSub++
	s.opsSubs[id] = fn
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		delete(s.opsSubs, id)
		s.mu.Unlock()
	}
}

// opsSubsLocked snapshots the ops-subscriber list. Caller holds s.mu.
func (s *Store) opsSubsLocked() []func(StoreOp) {
	if len(s.opsSubs) == 0 {
		return nil
	}
	fns := make([]func(StoreOp), 0, len(s.opsSubs))
	for _, fn := range s.opsSubs {
		fns = append(fns, fn)
	}
	return fns
}

// deliverOps hands one logged operation to the snapshotted ops
// subscribers. Callers hold deliverMu (not mu), the same ordering rule as
// fanOut.
func deliverOps(fns []func(StoreOp), op StoreOp) {
	if len(op.Events) == 0 && op.RemovePath == "" {
		return
	}
	for _, fn := range fns {
		fn(op)
	}
}

// SetReadOnly marks the store as a replica: PublishVersioned and Remove
// become no-ops (returning 0), so the only writers are the replication
// apply methods below. The Interface Server pairs this with
// Server.LeaderURL, which misdirects HTTP writes to the leader with a
// 421.
func (s *Store) SetReadOnly(ro bool) {
	s.mu.Lock()
	s.readOnly = ro
	s.mu.Unlock()
}

// AdoptGeneration overrides the store's restart generation with the
// replication leader's. A follower serves the leader's generation on
// every response, so a watcher failing over between replicas — or from
// the leader to a replica — does not misread the switch as a state-loss
// restart. The adopted value lands in the next snapshot like a native
// one.
func (s *Store) AdoptGeneration(gen uint64) {
	if gen == 0 {
		return
	}
	s.mu.Lock()
	s.generation = gen
	s.mu.Unlock()
}

// ResetReplicated wipes a replica's state for a new leader incarnation:
// documents, retired floors, the replay journal, and the epoch counter
// all reset, and the new generation is adopted. The follower calls it
// after a re-handshake reveals a generation (or shard-count) change —
// the old incarnation's versions and epochs mean nothing under the new
// one, and leaving them in place would make the version filter silently
// skip the new leader's lower-numbered commits. Parked waiters wake (the
// forced snapshot bootstrap that follows rebuilds state), held watch
// streams end on their next generation check so clients reconnect and
// read the new generation — their ordinary restart signal — and a
// durable replica snapshots the cleared state so its own restart cannot
// resurrect the dead incarnation's documents.
func (s *Store) ResetReplicated(gen uint64) {
	s.deliverMu.Lock()
	defer s.deliverMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.docs = make(map[string]Document)
	s.retired = make(map[string]uint64)
	s.journal = nil
	s.epoch = 0
	s.floorEpoch = 0
	if gen != 0 {
		s.generation = gen
	}
	if err := s.snapshotLocked(); err != nil {
		s.stats.PersistErrors++
	}
	s.mu.Unlock()
	// Wake everything: parked waiters re-check, and held stream pumps see
	// the generation change on their next collect and unwind.
	s.wakeAllWatchers()
}

// CloneState returns a copy of the store's persistent state (documents,
// retired floors, epoch, generation, journal) — what a replication leader
// packs into a snapshot bootstrap for a follower whose cursor has been
// compacted away.
func (s *Store) CloneState() PersistentState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stateLocked(true)
}

// SetReplicationStats installs the replication subsystem's counter
// callback; Stats() invokes it to fill StoreStats.Replication. fn must be
// safe for concurrent use and must not call back into Stats.
func (s *Store) SetReplicationStats(fn func() *ReplicationStats) {
	s.mu.Lock()
	s.replStats = fn
	s.mu.Unlock()
}

// ReplicationStats is the replication counter block surfaced in
// StoreStats (and the /.stats endpoint) when the store is a replication
// leader or follower. Slices are indexed by replication shard.
type ReplicationStats struct {
	// Role is "leader" or "follower".
	Role string
	// LeaderURL is the leader a follower tails ("" on the leader).
	LeaderURL string
	// Generation is the replication generation every replica serves: the
	// leader's store generation, adopted by followers.
	Generation uint64
	// Shards is the replication shard count from the handshake.
	Shards int
	// LSN is the per-shard log position: the leader's last assigned lsn,
	// or the follower's last applied lsn.
	LSN []uint64
	// FloorLSN is the leader's oldest still-serveable cursor per shard; a
	// follower below it is bootstrapped from a snapshot.
	FloorLSN []uint64
	// LeaderLSN is the follower's view of the leader's per-shard lsn
	// (from received records and heartbeats).
	LeaderLSN []uint64
	// Lag is the follower's total backlog: sum over shards of
	// LeaderLSN-LSN.
	Lag uint64
	// Records counts shipped (leader) or applied (follower) data records.
	Records uint64
	// Batches counts commit batches, Removes retirements.
	Batches, Removes uint64
	// Bootstraps counts snapshot bootstraps served or applied.
	Bootstraps uint64
	// Heartbeats counts liveness records sent or received.
	Heartbeats uint64
	// Reconnects counts follower tail reconnects after broken streams.
	Reconnects uint64
	// Evictions counts tail streams the leader dropped for backpressure —
	// a peer whose writes missed the tail server's write deadline.
	Evictions uint64
	// Resets counts follower re-handshakes that revealed a new leader
	// incarnation (generation or shard-count change) — each wiped the
	// local state and re-bootstrapped under the new generation.
	Resets uint64
	// FrameErrors counts torn or CRC-rejected records on the wire — each
	// forces a reconnect and a re-fetch from the last applied lsn.
	FrameErrors uint64
	// Tails is the leader's count of currently held tail streams.
	Tails int
}

// ApplyReplicated commits a batch of replicated events into the store,
// installing the leader's versions and epochs verbatim: documents update,
// the journal extends (insertion-sorted by epoch — shard streams may
// interleave), persistence appends, and watchers fan out the leader's
// exact payload bytes. Events at or below the path's current version (or
// its retired floor) are skipped, which makes re-applying an overlapping
// record — a reconnect, a bootstrap, a durable-cursor lag window — both
// miss-free and duplicate-free. It returns the number of events applied.
func (s *Store) ApplyReplicated(evs []StoreEvent) int {
	var p Persistence
	var tok SyncToken
	defer func() { s.awaitDurable(p, tok) }()
	s.deliverMu.Lock()
	defer s.deliverMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0
	}
	fresh := make([]StoreEvent, 0, len(evs))
	for _, ev := range evs {
		if cur, ok := s.docs[ev.Path]; ok && ev.Doc.Version <= cur.Version {
			continue
		}
		if rv, retired := s.retired[ev.Path]; retired && ev.Doc.Version <= rv {
			continue
		}
		delete(s.retired, ev.Path)
		if ev.Payload == nil {
			ev.Payload = encodeEventPayload(ev.Path, ev.Doc)
		}
		s.docs[ev.Path] = ev.Doc
		s.stats.Commits++
		fresh = append(fresh, ev)
	}
	if len(fresh) == 0 {
		s.mu.Unlock()
		return 0
	}
	s.stats.Batches++
	if e := fresh[len(fresh)-1].Doc.Epoch; e > s.epoch {
		s.epoch = e
	}
	s.journalInsertLocked(fresh)
	if s.persist != nil {
		t, err := s.persist.Append(fresh)
		if err != nil {
			s.stats.PersistErrors++
		} else {
			s.stats.WALAppends++
			tok = t
		}
	}
	fns := s.subscribersLocked()
	ops := s.opsSubsLocked()
	p = s.persist
	s.mu.Unlock()
	s.fanOut(fresh, fns)
	deliverOps(ops, StoreOp{Events: fresh})
	s.maybeCompact()
	return len(fresh)
}

// ApplyReplicatedRemove retires a path from a replicated remove record.
// A committed version newer than the removed one outranks the (stale)
// remove; without a committed document the retired floor is still
// adopted so a later republication resumes the leader's sequence. It
// reports whether a document was actually retired.
func (s *Store) ApplyReplicatedRemove(path string, version uint64) bool {
	var p Persistence
	var tok SyncToken
	defer func() { s.awaitDurable(p, tok) }()
	s.deliverMu.Lock()
	defer s.deliverMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	d, ok := s.docs[path]
	if ok && d.Version > version {
		s.mu.Unlock()
		return false
	}
	if !ok {
		if s.retired[path] < version {
			s.retired[path] = version
		}
		s.mu.Unlock()
		return false
	}
	s.retired[path] = version
	delete(s.docs, path)
	if s.persist != nil {
		t, err := s.persist.AppendRemove(path, version)
		if err != nil {
			s.stats.PersistErrors++
		} else {
			s.stats.WALAppends++
			tok = t
			p = s.persist
		}
	}
	ops := s.opsSubsLocked()
	s.mu.Unlock()
	deliverOps(ops, StoreOp{RemovePath: path, RemoveVersion: version})
	return true
}

// journalInsertLocked extends the replay journal with a replicated
// record's events, keeping the ring sorted by epoch: concurrent shard
// streams interleave their epochs, and the replay binary search requires
// order. Events are inserted one epoch-run at a time — a commit record
// (every event sharing the batch epoch) is a single insertion, while a
// multi-epoch bootstrap block splits at its epoch boundaries, so an
// epoch another shard's stream already journaled cannot land inside the
// block and unsort the ring. An epoch at or below the journal floor is
// dropped — it is already-evicted territory. Caller holds s.mu.
func (s *Store) journalInsertLocked(evs []StoreEvent) {
	if s.histLen <= 0 {
		s.floorEpoch = s.epoch
		return
	}
	for len(evs) > 0 {
		e := evs[0].Doc.Epoch
		n := 1
		for n < len(evs) && evs[n].Doc.Epoch == e {
			n++
		}
		run := evs[:n]
		evs = evs[n:]
		if e <= s.floorEpoch {
			continue
		}
		idx := sort.Search(len(s.journal), func(i int) bool { return s.journal[i].Doc.Epoch > e })
		if idx == len(s.journal) {
			s.journal = append(s.journal, run...)
		} else {
			tail := append(append([]StoreEvent(nil), run...), s.journal[idx:]...)
			s.journal = append(s.journal[:idx], tail...)
		}
	}
	s.trimJournalLocked()
}

// ShardOf is the store's stable path→shard assignment (FNV-1a mod
// shards), shared by the WAL layout and the replication transport so a
// path's records land in the same shard on every process.
func ShardOf(path string, shards int) int {
	return shardOf(path, shards)
}

// MaxFrame bounds a single replication frame, mirroring the WAL record
// bound: a corrupt length prefix must not drive a giant allocation.
const MaxFrame = walMaxRecord

// Replication frame kinds shared with the WAL record format.
const (
	// FrameCommit is a committed batch: {"lsn":N,"events":[...]} — the
	// exact WAL commit record.
	FrameCommit = walKindCommit
	// FrameRemove is a retirement: {"lsn":N,"path":...,"version":...}.
	FrameRemove = walKindRemove
)

// AppendFrame frames kind+payload in the WAL record format
// ([4B LE length][4B LE CRC-32][kind byte + payload]) onto buf and
// returns the extended slice — the replication transport's (and the
// WAL's) one framing.
func AppendFrame(buf []byte, kind byte, payload []byte) []byte {
	return appendWALRecord(buf, kind, payload)
}

// DecodeFrame parses the frame at the head of data, returning its kind,
// payload, and total size, or ok=false when the head is not a complete,
// CRC-valid frame.
func DecodeFrame(data []byte) (kind byte, payload []byte, n int, ok bool) {
	rec, n, ok := decodeWALRecord(data)
	if !ok {
		return 0, nil, 0, false
	}
	return rec.kind, rec.payload, n, true
}

// EncodeCommitFrame renders one committed batch as a CRC-framed commit
// record, splicing the events' commit-time payloads without
// re-marshaling.
func EncodeCommitFrame(lsn uint64, evs []StoreEvent) []byte {
	return encodeCommitRecord(lsn, evs)
}

// DecodeCommitFrame parses a commit-record payload back into its lsn and
// events; each event's Payload is re-derived deterministically, so the
// bytes a follower fans out are identical to the leader's.
func DecodeCommitFrame(payload []byte) (uint64, []StoreEvent, error) {
	return decodeCommitPayload(payload)
}

// EncodeRemoveFrame renders one retirement as a CRC-framed remove record.
func EncodeRemoveFrame(lsn uint64, path string, version uint64) []byte {
	return encodeRemoveRecord(lsn, path, version)
}

// DecodeRemoveFrame parses a remove-record payload.
func DecodeRemoveFrame(payload []byte) (lsn uint64, path string, version uint64, err error) {
	var rec walRemove
	if err := json.Unmarshal(payload, &rec); err != nil {
		return 0, "", 0, err
	}
	return rec.Lsn, rec.Path, rec.Version, nil
}

// EventPayload marshals one committed version into the shared wire form
// (the SSE "data:" line / WAL commit element) — what a leader packs into
// a snapshot bootstrap for documents whose commit-time payload is gone.
func EventPayload(path string, d Document) []byte {
	return encodeEventPayload(path, d)
}
