package ifsvr

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"strconv"
)

// The write-ahead-log record format.
//
// The WAL is a sequence of length-prefixed, CRC-guarded records:
//
//	[4B little-endian payload length][4B little-endian CRC-32 (IEEE) of payload][payload]
//
// The first payload byte is the record kind; the rest is JSON. A commit
// record's "events" array holds the exact per-event wire objects the SSE
// transport sends as its "data:" lines (streamWire) — the store marshals
// each committed event once and splices the same bytes into the log AND
// every streaming watcher's connection, so the two encoders cannot drift
// apart and the fan-out cost is one marshal per commit instead of one per
// watcher.
//
// Every record carries the store's log sequence number (lsn, monotone per
// logged operation). The snapshot records the last lsn it covers, and
// recovery skips records at or below it — which makes replay idempotent
// when a crash lands between the snapshot rename and the WAL reset and
// old records linger in the log.
//
// Recovery reads records until the first torn or corrupt one (short frame,
// absurd length, or CRC mismatch) and keeps the longest valid prefix: a
// crash mid-append loses at most the batch being written, never an earlier
// one. A record is only acted on after its CRC checks out, so a flipped
// byte anywhere in the tail degrades to clean truncation.

const (
	// walHeaderLen frames every record: payload length + CRC.
	walHeaderLen = 8
	// walMaxRecord bounds a single record so a corrupt length prefix cannot
	// drive a giant allocation during recovery (documents are capped at
	// 16 MiB on the fetch path; a batch of a few of them fits comfortably).
	walMaxRecord = 64 << 20

	// walKindCommit is a committed publication batch:
	// {"lsn":N,"events":[streamWire...]}.
	walKindCommit = 'C'
	// walKindRemove is a retired path: {"lsn":..., "path":..., "version":...}.
	walKindRemove = 'R'
	// walKindShard is the shard-header record leading every shard WAL
	// file: {"schema":..., "shard":i, "shards":K}. It is framing metadata
	// only — recovery validates and skips it — written lazily before the
	// first data record after a reset, so a compacted (empty) log stays
	// zero bytes.
	walKindShard = 'S'
)

// walSchema identifies the sharded WAL framing inside shard-header
// records.
const walSchema = "livedev/ifsvr-wal/v2"

// walRecord is one decoded WAL record.
type walRecord struct {
	kind    byte
	payload []byte // JSON, without the kind byte
}

// walCommit is the JSON layout of a walKindCommit payload.
type walCommit struct {
	Lsn    uint64       `json:"lsn"`
	Events []streamWire `json:"events"`
}

// walRemove is the JSON payload of a walKindRemove record.
type walRemove struct {
	Lsn  uint64 `json:"lsn"`
	Path string `json:"path"`
	// Version is the retired path's last committed version — the floor a
	// republication resumes from.
	Version uint64 `json:"version"`
}

// appendWALRecord frames kind+payload onto buf and returns the extended
// slice.
func appendWALRecord(buf []byte, kind byte, payload []byte) []byte {
	var hdr [walHeaderLen]byte
	body := make([]byte, 0, 1+len(payload))
	body = append(body, kind)
	body = append(body, payload...)
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(body))
	buf = append(buf, hdr[:]...)
	return append(buf, body...)
}

// encodeCommitRecord renders one committed batch as a WAL record, splicing
// the events' pre-marshaled wire payloads into the envelope without
// re-marshaling them.
func encodeCommitRecord(lsn uint64, evs []StoreEvent) []byte {
	n := 40
	for _, ev := range evs {
		n += len(ev.Payload) + 1
	}
	body := make([]byte, 0, n)
	body = append(body, `{"lsn":`...)
	body = strconv.AppendUint(body, lsn, 10)
	body = append(body, `,"events":[`...)
	for i, ev := range evs {
		if i > 0 {
			body = append(body, ',')
		}
		body = append(body, ev.Payload...)
	}
	body = append(body, "]}"...)
	return appendWALRecord(nil, walKindCommit, body)
}

// encodeRemoveRecord renders one retirement as a WAL record.
func encodeRemoveRecord(lsn uint64, path string, version uint64) []byte {
	body, _ := json.Marshal(walRemove{Lsn: lsn, Path: path, Version: version})
	return appendWALRecord(nil, walKindRemove, body)
}

// walShardHeader is the JSON payload of a walKindShard record.
type walShardHeader struct {
	Schema string `json:"schema"`
	Shard  int    `json:"shard"`
	Shards int    `json:"shards"`
}

// encodeShardHeaderRecord renders the header record that leads shard
// `shard` of a K-way layout.
func encodeShardHeaderRecord(shard, shards int) []byte {
	body, _ := json.Marshal(walShardHeader{Schema: walSchema, Shard: shard, Shards: shards})
	return appendWALRecord(nil, walKindShard, body)
}

// decodeWALRecord parses the record at the head of data. It returns the
// record and the number of bytes it occupied, or ok=false when the head is
// not a complete, CRC-valid record (the recovery stop condition).
func decodeWALRecord(data []byte) (rec walRecord, n int, ok bool) {
	if len(data) < walHeaderLen {
		return walRecord{}, 0, false
	}
	length := binary.LittleEndian.Uint32(data[0:4])
	if length < 1 || length > walMaxRecord || int(length) > len(data)-walHeaderLen {
		return walRecord{}, 0, false
	}
	body := data[walHeaderLen : walHeaderLen+int(length)]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(data[4:8]) {
		return walRecord{}, 0, false
	}
	return walRecord{kind: body[0], payload: body[1:]}, walHeaderLen + int(length), true
}

// scanWAL decodes the longest valid prefix of a WAL image, returning the
// records and the prefix length in bytes (what recovery truncates the file
// to).
func scanWAL(data []byte) (recs []walRecord, valid int) {
	for {
		rec, n, ok := decodeWALRecord(data[valid:])
		if !ok {
			return recs, valid
		}
		recs = append(recs, rec)
		valid += n
	}
}

// decodeCommitPayload parses a commit record back into its lsn and events
// (Document + re-usable wire payload per event).
func decodeCommitPayload(payload []byte) (uint64, []StoreEvent, error) {
	var rec walCommit
	if err := json.Unmarshal(payload, &rec); err != nil {
		return 0, nil, fmt.Errorf("ifsvr: decoding WAL commit record: %w", err)
	}
	evs := make([]StoreEvent, 0, len(rec.Events))
	for _, w := range rec.Events {
		doc := Document{
			Content:           w.Content,
			ContentType:       w.ContentType,
			Version:           w.Version,
			DescriptorVersion: w.DescriptorVersion,
			Epoch:             w.Epoch,
		}
		evs = append(evs, StoreEvent{Path: w.Path, Doc: doc, Payload: encodeEventPayload(w.Path, doc)})
	}
	return rec.Lsn, evs, nil
}

// encodeEventPayload marshals one committed version into the shared wire
// form: the JSON object that is both the SSE "data:" line and the WAL
// commit-record element. It is called once per event at commit time; the
// resulting bytes are fanned out to every watcher and appended to the log,
// so they must never be mutated afterwards.
func encodeEventPayload(path string, d Document) []byte {
	data, err := json.Marshal(streamWire{
		Path:              path,
		Version:           d.Version,
		DescriptorVersion: d.DescriptorVersion,
		Epoch:             d.Epoch,
		ContentType:       d.ContentType,
		Content:           d.Content,
	})
	if err != nil {
		// streamWire is strings and integers; Marshal cannot fail on it.
		panic("ifsvr: marshaling stream event: " + err.Error())
	}
	return data
}
