package ifsvr

import (
	"context"
	"errors"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"livedev/internal/clock"
)

// ErrStoreClosed reports an operation on a closed publication store.
var ErrStoreClosed = errors.New("ifsvr: publication store closed")

// ErrClosed is the former name of ErrStoreClosed (the in-memory store it
// named was folded into Store).
//
// Deprecated: match ErrStoreClosed.
var ErrClosed = ErrStoreClosed

// DefaultHistoryLen is the journal capacity a store is created with: how
// many committed versions (across all paths) are retained for Replay.
const DefaultHistoryLen = 256

// StoreEvent is one committed publication fanned out to subscribers.
type StoreEvent struct {
	// Path is the document path that committed.
	Path string
	// Doc is the committed document (its Version and Epoch are final).
	Doc Document
	// Payload is the event's shared wire encoding: the JSON object that is
	// both the SSE "data:" line every streaming watcher receives and the
	// element of the WAL commit record. It is marshaled exactly once, at
	// commit time, and fanned out by reference — receivers must treat it
	// as immutable.
	Payload []byte
}

// StoreStats counts store activity; all fields are cumulative.
type StoreStats struct {
	// Publishes counts PublishVersioned calls.
	Publishes uint64
	// Commits counts committed document versions (one per fan-out event).
	Commits uint64
	// Coalesced counts publishes absorbed into an already-pending slot —
	// edit-storm publications that never became a distinct version.
	Coalesced uint64
	// Batches counts flush batches that committed at least one document.
	Batches uint64
	// Flushes counts explicit Flush calls (the forced-publication path).
	Flushes uint64
	// Replays counts Replay calls served from the journal.
	Replays uint64
	// ReplayMisses counts Replay calls the journal no longer covered —
	// each forces the caller onto the full-snapshot fallback.
	ReplayMisses uint64
	// WALAppends counts commit batches (and retirements) durably logged.
	WALAppends uint64
	// Snapshots counts compacted snapshots written.
	Snapshots uint64
	// PersistErrors counts failed persistence operations — the store keeps
	// serving from memory, but durability of the failed batch is lost.
	PersistErrors uint64
	// Epoch is the current commit epoch (gauge, not cumulative).
	Epoch uint64
	// Generation is this store incarnation's restart generation.
	Generation uint64
	// JournalDepth is the number of events currently retained in the
	// replay journal (gauge, not cumulative).
	JournalDepth int
	// Durability is the persistence backend's own counter block (per-shard
	// lsns, fsyncs, group-commit batch sizes, fsync lag); nil for an
	// in-memory store.
	Durability *PersistStats
	// Replication is the replication subsystem's counter block (role,
	// per-shard lsns, lag, reconnects); nil for an unreplicated store.
	Replication *ReplicationStats
	// Fanout is the delivery plane's counter block: registered watchers,
	// commit-time wakeups, flush batch sizes, and the backpressure valves
	// (evictions, snapshot resets).
	Fanout FanoutStats
}

// Store is the event-driven publication core: a versioned interface-document
// store with epoch-numbered snapshots, subscriber fan-out, edit-storm
// coalescing, and an epoch-indexed journal for watcher catch-up. It is the
// single Backing implementation: every binding publishes through it (via the
// SDE Manager's PublishInterface), the Interface Server reads from it
// (NewView), and a standalone Server (New or the zero value) owns one with
// coalescing disabled.
//
// Coalescing: with a non-zero flush window, rapid PublishVersioned calls to
// an already-published path are staged, and the window's flush commits each
// path once with the last-written content — a storm of N publications
// becomes one committed version per window. Each path can carry its own
// window (SetPathWindow) so hot classes coalesce harder than cold ones. The
// first publication of a path always commits immediately (the paper's
// "immediately publishes a basic definition", Section 4), and Flush commits
// the staged set synchronously, which is how the forced-publication
// protocol (Section 5.7) keeps its recency guarantee: DLPublisher
// .EnsureCurrent flushes before the "Non Existent Method" reply goes out.
//
// Epochs: every commit batch advances the store epoch; each committed
// document records the epoch it was committed under, giving observers a
// store-wide happened-before order across paths.
//
// Journal: the last HistoryLen committed versions are retained, and
// Replay(path, afterEpoch) returns the committed versions of a path a
// reconnecting watcher missed — the streaming watch transport's catch-up
// path, which turns a reconnect into a delta instead of a full fetch.
//
// Persistence: a store opened with OpenStore over a Persistence backend
// (StoreConfig.Dir for the file implementation) appends every commit
// batch to a path-hash-sharded write-ahead log before fan-out, compacts
// each shard's state (documents, epoch counter, replay journal, restart
// generation) into that shard's snapshot every SnapshotEvery of its
// batches, and — under StoreConfig.Sync group or always — holds the
// publisher's ack until the batch is fsynced. A reopened store resumes at an
// epoch strictly past its pre-restart epoch, so watchers reconnecting
// with their last epoch ride journal replay across the restart instead
// of forcing a snapshot stampede.
type Store struct {
	window  time.Duration
	clk     clock.Clock
	histLen int

	// generation identifies this store incarnation (never 0): persistent
	// stores count incarnations over their data directory (1, 2, ...);
	// in-memory stores draw a random identity at creation. Served as the
	// X-Store-Generation header so clients can tell "same server, journal
	// evicted" (snapshot event, same generation) from "new server" (a
	// generation change — with an epoch regression when the new server
	// lost the old state).
	generation uint64

	// persist, when non-nil, is the durability backend: every commit batch
	// is appended to its WAL (under mu, before fan-out), and shards whose
	// batch count is due are compacted into snapshots — off mu, under
	// deliverMu, so readers are not blocked by snapshot IO. The sync wait
	// of a committed batch (policy group/always) happens after BOTH locks
	// release, which is what lets concurrent committers amortize one
	// fsync.
	persist Persistence

	mu           sync.Mutex
	docs         map[string]Document
	retired      map[string]uint64   // removed paths → last committed version
	pending      map[string]Document // staged content awaiting a flush
	pendingOrder []string
	deadlines    map[string]time.Time // per-path commit deadline of staged content
	pathWindows  map[string]time.Duration
	timer        clock.Timer
	timerOn      bool
	timerAt      time.Time
	epoch        uint64
	journal      []StoreEvent // commit-ordered ring, capacity histLen
	floorEpoch   uint64       // journal covers epochs in (floorEpoch, epoch]
	stats        StoreStats
	subs         map[uint64]func(StoreEvent)
	nextSub      uint64
	opsSubs      map[uint64]func(StoreOp) // replication taps (SubscribeOps)
	nextOpsSub   uint64
	readOnly     bool // replica: local publishes/removes are dropped
	replStats    func() *ReplicationStats
	closed       bool

	// watchers is the path-hash-sharded wake registry (see watchers.go):
	// parked long-polls and held streams register a capacity-1 wake
	// channel per path, and a commit nudges only the shards its batch
	// dirtied. Shard locks nest strictly inside mu (registration and
	// wakeup never hold mu) and are never held across a callback.
	watchers [watchShardCount]watchShard
	// fanout is the delivery plane's lock-free instrumentation.
	fanout fanoutCounters

	// deliverMu serializes commit+fan-out so events arrive in commit order
	// even when a timer flush races an explicit Flush or an immediate
	// publish. It is always acquired before mu.
	deliverMu sync.Mutex
}

var _ Backing = (*Store)(nil)

// NewStore returns an in-memory store with the given flush window (0
// disables coalescing: every publish commits immediately) and the default
// journal capacity. clk drives the flush timer; nil means the real clock.
// For a store that survives process restarts, use OpenStore.
func NewStore(window time.Duration, clk clock.Clock) *Store {
	if clk == nil {
		clk = clock.Real{}
	}
	gen := rand.Uint64()
	for gen == 0 {
		gen = rand.Uint64()
	}
	return &Store{
		window:     window,
		clk:        clk,
		histLen:    DefaultHistoryLen,
		generation: gen,
		docs:       make(map[string]Document),
		retired:    make(map[string]uint64),
		pending:    make(map[string]Document),
		deadlines:  make(map[string]time.Time),
		subs:       make(map[uint64]func(StoreEvent)),
	}
}

// StoreConfig configures OpenStore. The zero value matches
// NewStore(0, nil): in-memory, coalescing disabled, default journal.
type StoreConfig struct {
	// Window is the store-wide edit-storm coalescing window (0 commits
	// every publish immediately).
	Window time.Duration
	// Clock drives the flush timer; nil means the real clock.
	Clock clock.Clock
	// HistoryLen bounds the replay journal (0 means DefaultHistoryLen,
	// negative disables it).
	HistoryLen int
	// Dir enables the file persistence backend (sharded snapshot-NN.json
	// + wal-NN.log pairs under this directory) when Persistence is nil.
	// Empty keeps the store in-memory.
	Dir string
	// Persistence is an explicit durability backend; it overrides Dir
	// (and Shards/Sync/GroupWindow/SnapshotEvery, which configure the
	// file backend Dir resolves to).
	Persistence Persistence
	// SnapshotEvery is how many commit batches one shard logs between
	// cadence compactions of that shard (0 means DefaultSnapshotEvery).
	SnapshotEvery int
	// Shards is the WAL/snapshot shard count (0 means DefaultShards).
	Shards int
	// Sync selects what a committed publication's ack means for
	// durability: SyncNone (buffered write, the default), SyncGroupCommit
	// (ack after an fsync shared with concurrent committers), or
	// SyncAlways (ack after a per-batch fsync).
	Sync SyncPolicy
	// GroupWindow bounds the extra time a lone commit may wait for
	// company under SyncGroupCommit (0 means DefaultGroupWindow).
	GroupWindow time.Duration
}

// OpenStore opens a store, recovering documents, versions, the epoch
// counter, the bounded replay journal, and the restart generation from the
// configured persistence backend (if any). The recovered generation is
// bumped and a fresh compacted snapshot is written immediately, so every
// open is durably distinguishable from the last. With no persistence
// configured it is NewStore with options.
func OpenStore(cfg StoreConfig) (*Store, error) {
	s := NewStore(cfg.Window, cfg.Clock)
	switch {
	case cfg.HistoryLen < 0:
		s.histLen = 0
	case cfg.HistoryLen > 0:
		s.histLen = cfg.HistoryLen
	}
	p := cfg.Persistence
	if p == nil && cfg.Dir != "" {
		fp, err := OpenFilePersistence(FileConfig{
			Dir:           cfg.Dir,
			Shards:        cfg.Shards,
			Sync:          cfg.Sync,
			GroupWindow:   cfg.GroupWindow,
			SnapshotEvery: cfg.SnapshotEvery,
		})
		if err != nil {
			return nil, err
		}
		p = fp
	}
	if p == nil {
		return s, nil
	}
	state, err := p.Load()
	if err != nil {
		_ = p.Close()
		return nil, err
	}
	for path, d := range state.Docs {
		s.docs[path] = d
	}
	for path, v := range state.Retired {
		s.retired[path] = v
	}
	s.epoch = state.Epoch
	s.generation = state.Generation + 1
	if s.histLen > 0 {
		s.journal = state.Journal
		s.floorEpoch = state.FloorEpoch
		s.trimJournalLocked()
	} else {
		s.floorEpoch = s.epoch
	}
	s.persist = p
	// Compact immediately: the fresh snapshot records the bumped
	// generation (so a crash before the first commit still counts as an
	// incarnation) and resets the WAL the recovery just replayed.
	if err := s.snapshotLocked(); err != nil {
		_ = p.Close()
		return nil, err
	}
	return s, nil
}

// Generation returns the store's incarnation identity (see the field doc).
func (s *Store) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.generation
}

// FlushWindow returns the configured store-wide coalescing window.
func (s *Store) FlushWindow() time.Duration { return s.window }

// SetHistoryLen resizes the replay journal to retain the last n committed
// versions (n < 0 disables the journal entirely; 0 restores the default).
// Shrinking evicts the oldest entries, moving the replay floor forward.
func (s *Store) SetHistoryLen(n int) {
	if n == 0 {
		n = DefaultHistoryLen
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 0 {
		s.histLen = 0
		s.journal = nil
		s.floorEpoch = s.epoch
		return
	}
	s.histLen = n
	s.trimJournalLocked()
}

// HistoryLen returns the journal capacity (0 when disabled).
func (s *Store) HistoryLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.histLen
}

// SetPathWindow overrides the coalescing window for one path — hot paths
// can coalesce harder (longer window) than the store-wide setting, cold
// paths softer (shorter, or 0 for immediate commits). A zero-or-negative
// override commits that path's publications immediately. The override
// applies to publications staged after the call and is cleared by Remove.
func (s *Store) SetPathWindow(path string, window time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pathWindows == nil {
		s.pathWindows = make(map[string]time.Duration)
	}
	s.pathWindows[path] = window
}

// windowFor resolves the effective coalescing window of path. Caller holds
// s.mu.
func (s *Store) windowFor(path string) time.Duration {
	if w, ok := s.pathWindows[path]; ok {
		return w
	}
	return s.window
}

// Epoch returns the current commit epoch.
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Stats returns a snapshot of the store counters, including the
// persistence backend's durability block for a persistent store.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	st := s.stats
	st.Epoch = s.epoch
	st.Generation = s.generation
	st.JournalDepth = len(s.journal)
	p := s.persist
	rs := s.replStats
	s.mu.Unlock()
	if p != nil {
		ps := p.Stats()
		st.Durability = &ps
	}
	if rs != nil {
		st.Replication = rs()
	}
	st.Fanout = s.fanoutStats()
	return st
}

// Publish is PublishVersioned without a descriptor version.
func (s *Store) Publish(path, contentType, content string) uint64 {
	return s.PublishVersioned(path, contentType, content, 0)
}

// PublishVersioned implements Backing: store content under path. With
// coalescing enabled and the path already published, the write is staged
// until the path's flush window elapses (or Flush runs), and the returned
// version is the version the path will carry after that flush. Staged
// writes to the same path coalesce — only the last content commits — so an
// earlier caller in the same window receives the version its superseded
// content never actually had; treat the return as "the path's next
// committed version", not a receipt for this exact content.
func (s *Store) PublishVersioned(path, contentType, content string, descriptorVersion uint64) uint64 {
	staged := Document{
		Content:           content,
		ContentType:       contentType,
		DescriptorVersion: descriptorVersion,
	}
	// The durability wait runs after BOTH locks release (deferred calls
	// run last-in-first-out): concurrent publishers park in Sync together
	// and share the backend's next fsync, instead of serializing fsyncs
	// behind deliverMu.
	var p Persistence
	var tok SyncToken
	defer func() { s.awaitDurable(p, tok) }()
	s.deliverMu.Lock()
	defer s.deliverMu.Unlock()
	s.mu.Lock()
	s.stats.Publishes++
	if s.closed || s.readOnly {
		s.mu.Unlock()
		return 0
	}
	_, published := s.docs[path]
	window := s.windowFor(path)
	if window <= 0 || !published {
		var evs []StoreEvent
		evs, tok = s.commitLocked([]string{path}, map[string]Document{path: staged})
		ver := s.docs[path].Version
		fns := s.subscribersLocked()
		ops := s.opsSubsLocked()
		p = s.persist
		s.mu.Unlock()
		s.fanOut(evs, fns)
		deliverOps(ops, StoreOp{Events: evs})
		s.maybeCompact()
		return ver
	}
	if _, dup := s.pending[path]; dup {
		s.stats.Coalesced++
	} else {
		s.pendingOrder = append(s.pendingOrder, path)
		s.deadlines[path] = s.clk.Now().Add(window)
		s.rearmLocked()
	}
	s.pending[path] = staged
	ver := s.docs[path].Version + 1
	s.mu.Unlock()
	return ver
}

// commitLocked commits the given paths (drawing content from contents),
// bumping the epoch once for the batch and journaling each committed
// version. Caller holds s.mu, must fan the returned events out after
// unlocking, and must pass the returned token to awaitDurable after
// releasing deliverMu — the ack of a synced store is only honest once
// that wait returns.
func (s *Store) commitLocked(order []string, contents map[string]Document) ([]StoreEvent, SyncToken) {
	if len(order) == 0 {
		return nil, nil
	}
	s.epoch++
	s.stats.Batches++
	evs := make([]StoreEvent, 0, len(order))
	for _, path := range order {
		staged := contents[path]
		d := s.docs[path]
		if d.Version == 0 {
			// A republication of a retired path resumes its version
			// sequence so parked watchers still wake on it.
			d.Version = s.retired[path]
			delete(s.retired, path)
		}
		d.Content = staged.Content
		d.ContentType = staged.ContentType
		d.DescriptorVersion = staged.DescriptorVersion
		d.Epoch = s.epoch
		d.Version++
		s.docs[path] = d
		s.stats.Commits++
		// One marshal per committed version: the same bytes back the WAL
		// record and every streaming watcher's "data:" line.
		evs = append(evs, StoreEvent{Path: path, Doc: d, Payload: encodeEventPayload(path, d)})
	}
	s.journalLocked(evs)
	var tok SyncToken
	if s.persist != nil {
		t, err := s.persist.Append(evs)
		if err != nil {
			s.stats.PersistErrors++
		} else {
			s.stats.WALAppends++
			tok = t
		}
	}
	return evs, tok
}

// awaitDurable blocks until the logged operation behind tok is durable
// under the backend's sync policy. Callers must have released deliverMu
// (and mu): the wait is where concurrent committers gather into one
// group-commit fsync, and holding the writer lock through it would
// serialize the groups back into per-commit fsyncs.
func (s *Store) awaitDurable(p Persistence, tok SyncToken) {
	if p == nil || tok == nil {
		return
	}
	if err := p.Sync(tok); err != nil {
		s.mu.Lock()
		s.stats.PersistErrors++
		s.mu.Unlock()
	}
}

// stateLocked assembles the persistent state. Caller holds s.mu; when the
// state will outlive the lock (maybeCompact), pass copied=true to clone
// the maps and journal so the compaction can marshal without the lock.
func (s *Store) stateLocked(copied bool) PersistentState {
	st := PersistentState{
		Generation: s.generation,
		Epoch:      s.epoch,
		FloorEpoch: s.floorEpoch,
		Docs:       s.docs,
		Retired:    s.retired,
		Journal:    s.journal,
	}
	if copied {
		st.Docs = make(map[string]Document, len(s.docs))
		for k, v := range s.docs {
			st.Docs[k] = v
		}
		st.Retired = make(map[string]uint64, len(s.retired))
		for k, v := range s.retired {
			st.Retired[k] = v
		}
		st.Journal = append([]StoreEvent(nil), s.journal...)
	}
	return st
}

// snapshotLocked compacts the full store state — every shard — into the
// persistence backend. Caller holds s.mu (or, during OpenStore/Close, has
// exclusive access) — only the open/close paths pay snapshot IO under the
// lock; the steady-state cadence goes through maybeCompact instead.
func (s *Store) snapshotLocked() error {
	if s.persist == nil {
		return nil
	}
	if err := s.persist.Snapshot(s.stateLocked(false)); err != nil {
		return err
	}
	s.stats.Snapshots++
	return nil
}

// maybeCompact writes the cadence snapshot when the backend reports one
// due (a shard crossed its batch budget). Caller holds deliverMu but NOT
// mu: deliverMu serializes every WAL writer (publish, flush, remove,
// close), so the logs cannot grow under the compaction, while readers on
// mu — document GETs, parked Waits, journal replays for a thousand held
// streams — never wait on snapshot file IO.
func (s *Store) maybeCompact() {
	s.mu.Lock()
	due := s.persist != nil && !s.closed && s.persist.CompactDue()
	var state PersistentState
	var p Persistence
	if due {
		state = s.stateLocked(true)
		p = s.persist
	}
	s.mu.Unlock()
	if !due {
		return
	}
	err := p.Compact(state)
	s.mu.Lock()
	if err != nil {
		s.stats.PersistErrors++
	} else {
		s.stats.Snapshots++
	}
	s.mu.Unlock()
}

// journalLocked appends the batch's events to the replay journal, evicting
// the oldest entries past the capacity. Caller holds s.mu.
func (s *Store) journalLocked(evs []StoreEvent) {
	if s.histLen <= 0 {
		s.floorEpoch = s.epoch
		return
	}
	s.journal = append(s.journal, evs...)
	s.trimJournalLocked()
}

// trimJournalLocked evicts journal entries past the capacity, advancing the
// replay floor to the newest evicted epoch. Caller holds s.mu.
func (s *Store) trimJournalLocked() {
	over := len(s.journal) - s.histLen
	if over <= 0 {
		return
	}
	s.floorEpoch = s.journal[over-1].Doc.Epoch
	copy(s.journal, s.journal[over:])
	s.journal = s.journal[:s.histLen]
}

// Replay returns the committed versions of path with an epoch greater than
// afterEpoch, oldest first — the delta a watcher that last saw afterEpoch
// missed. It reports false when the journal no longer covers that range
// (the entries were evicted, or the journal is disabled); the caller must
// fall back to a full snapshot of the current document.
func (s *Store) Replay(path string, afterEpoch uint64) ([]Document, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if afterEpoch < s.floorEpoch {
		s.stats.ReplayMisses++
		return nil, false
	}
	var docs []Document
	for _, ev := range s.journal[s.journalFromLocked(afterEpoch):] {
		if ev.Path == path {
			docs = append(docs, ev.Doc)
		}
	}
	s.stats.Replays++
	return docs, true
}

// journalFromLocked binary-searches the (epoch-ordered) journal for the
// first entry past afterEpoch, so a replay for a nearly-current watcher —
// the per-commit wake of every held stream — scans only the tail, not the
// whole ring. Caller holds s.mu.
func (s *Store) journalFromLocked(afterEpoch uint64) int {
	return sort.Search(len(s.journal), func(i int) bool {
		return s.journal[i].Doc.Epoch > afterEpoch
	})
}

// ReplayEvents is Replay returning the journal entries themselves, whose
// Payload fields carry the commit-time shared wire encoding — the
// streaming transport uses it to fan identical bytes out to every watcher
// instead of re-marshaling per connection.
func (s *Store) ReplayEvents(path string, afterEpoch uint64) ([]StoreEvent, bool) {
	return s.ReplayEventsInto(path, afterEpoch, nil)
}

// ReplayEventsInto is ReplayEvents appending into buf[:0], so a held
// stream waking once per commit reuses one buffer instead of allocating
// per wake. On a journal miss it returns buf[:0] (not nil), preserving
// the caller's buffer capacity for the next wake.
func (s *Store) ReplayEventsInto(path string, afterEpoch uint64, buf []StoreEvent) ([]StoreEvent, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	evs := buf[:0]
	if afterEpoch < s.floorEpoch {
		s.stats.ReplayMisses++
		return evs, false
	}
	for _, ev := range s.journal[s.journalFromLocked(afterEpoch):] {
		if ev.Path == path {
			evs = append(evs, ev)
		}
	}
	s.stats.Replays++
	return evs, true
}

// pumpView is one delivery pump's per-wake read of the store: the events
// pending past the pump's cursor (ok reports whether the journal still
// covers that range), plus the store-wide state the pump must react to
// (close, generation change, and the epoch its cursor lands on after a
// full drain).
type pumpView struct {
	events []StoreEvent
	ok     bool
	closed bool
	gen    uint64
	epoch  uint64
}

// pumpCollect gathers everything a waking delivery pump needs under one
// mu acquisition: the journal delta for path past afterEpoch (counted as
// a replay or replay-miss like any journal read), appended into buf[:0]
// so a held stream reuses one buffer across wakes. On ok=false the
// cursor fell below the journal floor and the pump must snapshot-reset.
func (s *Store) pumpCollect(path string, afterEpoch uint64, buf []StoreEvent) pumpView {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := pumpView{events: buf[:0], closed: s.closed, gen: s.generation, epoch: s.epoch}
	if afterEpoch < s.floorEpoch {
		s.stats.ReplayMisses++
		return v
	}
	for _, ev := range s.journal[s.journalFromLocked(afterEpoch):] {
		if ev.Path == path {
			v.events = append(v.events, ev)
		}
	}
	s.stats.Replays++
	v.ok = true
	return v
}

// rearmLocked (re)schedules the flush timer for the earliest pending
// deadline. Caller holds s.mu.
func (s *Store) rearmLocked() {
	var next time.Time
	for _, p := range s.pendingOrder {
		if dl := s.deadlines[p]; next.IsZero() || dl.Before(next) {
			next = dl
		}
	}
	if next.IsZero() {
		if s.timer != nil {
			s.timer.Stop()
			s.timer = nil
		}
		s.timerOn = false
		return
	}
	if s.timerOn && !s.timerAt.After(next) {
		return // the armed timer fires early enough
	}
	if s.timer != nil {
		s.timer.Stop()
	}
	d := next.Sub(s.clk.Now())
	if d < 0 {
		d = 0
	}
	s.timerAt = next
	s.timerOn = true
	s.timer = s.clk.AfterFunc(d, s.onFlushTimer)
}

// dueLocked stages-out everything whose deadline has passed. Caller holds
// s.mu.
func (s *Store) dueLocked(now time.Time) (order []string, contents map[string]Document) {
	contents = make(map[string]Document)
	keep := s.pendingOrder[:0]
	for _, p := range s.pendingOrder {
		if s.deadlines[p].After(now) {
			keep = append(keep, p)
			continue
		}
		order = append(order, p)
		contents[p] = s.pending[p]
		delete(s.pending, p)
		delete(s.deadlines, p)
	}
	s.pendingOrder = keep
	return order, contents
}

// flushLocked stages-out and commits everything pending. Caller holds s.mu.
func (s *Store) flushLocked() ([]StoreEvent, SyncToken) {
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	s.timerOn = false
	if len(s.pendingOrder) == 0 {
		return nil, nil
	}
	order, contents := s.pendingOrder, s.pending
	s.pendingOrder = nil
	s.pending = make(map[string]Document)
	s.deadlines = make(map[string]time.Time)
	return s.commitLocked(order, contents)
}

func (s *Store) onFlushTimer() {
	var p Persistence
	var tok SyncToken
	defer func() { s.awaitDurable(p, tok) }()
	s.deliverMu.Lock()
	defer s.deliverMu.Unlock()
	s.mu.Lock()
	s.timerOn = false
	s.timer = nil
	var evs []StoreEvent
	if !s.closed {
		order, contents := s.dueLocked(s.clk.Now())
		evs, tok = s.commitLocked(order, contents)
		p = s.persist
		s.rearmLocked() // paths with longer windows stay staged
	}
	fns := s.subscribersLocked()
	ops := s.opsSubsLocked()
	s.mu.Unlock()
	s.fanOut(evs, fns)
	deliverOps(ops, StoreOp{Events: evs})
	s.maybeCompact()
}

// Flush synchronously commits every staged publication — the forced-
// publication path: after Flush returns, Get observes everything published
// before the call (and, under a syncing policy, the batch is durable).
func (s *Store) Flush() {
	var p Persistence
	var tok SyncToken
	defer func() { s.awaitDurable(p, tok) }()
	s.deliverMu.Lock()
	defer s.deliverMu.Unlock()
	s.mu.Lock()
	s.stats.Flushes++
	var evs []StoreEvent
	if !s.closed {
		evs, tok = s.flushLocked()
		p = s.persist
	}
	fns := s.subscribersLocked()
	ops := s.opsSubsLocked()
	s.mu.Unlock()
	s.fanOut(evs, fns)
	deliverOps(ops, StoreOp{Events: evs})
	s.maybeCompact()
}

// subscribersLocked snapshots the subscriber list. Caller holds s.mu.
func (s *Store) subscribersLocked() []func(StoreEvent) {
	if len(s.subs) == 0 {
		return nil
	}
	fns := make([]func(StoreEvent), 0, len(s.subs))
	for _, fn := range s.subs {
		fns = append(fns, fn)
	}
	return fns
}

// fanOut wakes the watchers of the batch's paths, then delivers the
// events to the snapshotted subscribers. Callers hold deliverMu (acquired
// before the commit), which is what keeps delivery in commit order across
// concurrent committers. Waking a watcher is a non-blocking send — the
// actual socket writes happen on each watcher's own delivery pump, so the
// committing goroutine's cost here is O(watchers of the dirty paths), not
// O(bytes). Subscriber callbacks run on the committing goroutine and must
// not call back into the store's publish/flush paths.
func (s *Store) fanOut(evs []StoreEvent, fns []func(StoreEvent)) {
	if len(evs) > 0 {
		s.wakeWatchers(evs)
	}
	for _, ev := range evs {
		for _, fn := range fns {
			fn(ev)
		}
	}
}

// Subscribe registers fn for every committed publication and returns a
// cancel function. An event already being delivered when cancel returns may
// still invoke fn once.
func (s *Store) Subscribe(fn func(StoreEvent)) (cancel func()) {
	s.mu.Lock()
	id := s.nextSub
	s.nextSub++
	s.subs[id] = fn
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		delete(s.subs, id)
		s.mu.Unlock()
	}
}

// Remove implements Backing: retire a path when its server closes. The
// committed document disappears (Get reports it unpublished), staged writes
// and any per-path window override for it are dropped, and — because the
// "first publication commits immediately" rule keys on committed presence —
// a re-registered server's fresh documents commit synchronously instead of
// sitting out a flush window behind the dead server's entries. The retired
// version floor is kept so republication continues the sequence.
func (s *Store) Remove(path string) {
	var p Persistence
	var tok SyncToken
	defer func() { s.awaitDurable(p, tok) }()
	s.deliverMu.Lock()
	defer s.deliverMu.Unlock()
	s.mu.Lock()
	if s.readOnly {
		s.mu.Unlock()
		return
	}
	var removed uint64
	if d, ok := s.docs[path]; ok {
		removed = d.Version
		s.retired[path] = d.Version
		delete(s.docs, path)
		if s.persist != nil && !s.closed {
			t, err := s.persist.AppendRemove(path, d.Version)
			if err != nil {
				s.stats.PersistErrors++
			} else {
				s.stats.WALAppends++
				tok = t
				p = s.persist
			}
		}
	}
	delete(s.pathWindows, path)
	if _, staged := s.pending[path]; staged {
		delete(s.pending, path)
		delete(s.deadlines, path)
		order := s.pendingOrder[:0]
		for _, p := range s.pendingOrder {
			if p != path {
				order = append(order, p)
			}
		}
		s.pendingOrder = order
	}
	ops := s.opsSubsLocked()
	s.mu.Unlock()
	if removed != 0 {
		deliverOps(ops, StoreOp{RemovePath: path, RemoveVersion: removed})
	}
}

// Get implements Backing: the committed document at path. Staged (not yet
// flushed) content is not visible.
func (s *Store) Get(path string) (Document, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.docs[path]
	if !ok {
		return Document{}, ErrNotFound
	}
	return d, nil
}

// Version implements Backing.
func (s *Store) Version(path string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.docs[path].Version
}

// Paths implements Backing.
func (s *Store) Paths() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ps := make([]string, 0, len(s.docs))
	for p := range s.docs {
		ps = append(ps, p)
	}
	return ps
}

// Wait implements Backing: block until a version newer than after is
// committed at path, ctx ends, or the store closes. The wait parks on the
// sharded watcher registry, so a commit wakes only the waiters of the
// paths it actually touched — not, as the old store-wide broadcast
// channel did, every parked long-poll in the process.
func (s *Store) Wait(ctx context.Context, path string, after uint64) (Document, error) {
	// Register before the first check: a commit landing between the check
	// and the park must not be missed. The capacity-1 channel absorbs a
	// wake that arrives while this waiter is off checking.
	wake := make(chan struct{}, 1)
	cancel := s.watchPath(path, wake)
	defer cancel()
	for {
		s.mu.Lock()
		d, ok := s.docs[path]
		closed := s.closed
		s.mu.Unlock()
		if ok && d.Version > after {
			return d, nil
		}
		if closed {
			return Document{}, ErrStoreClosed
		}
		select {
		case <-ctx.Done():
			return Document{}, ctx.Err()
		case <-wake:
		}
	}
}

// Close flushes staged publications, wakes waiters, and stops the flush
// timer; a persistent store writes a final compacted snapshot and releases
// its backend. Subsequent publishes are dropped.
func (s *Store) Close() {
	s.deliverMu.Lock()
	defer s.deliverMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	// The final flush's batch needs no sync wait: the full snapshot below
	// durably captures it (and resets the logs) before the backend closes.
	evs, _ := s.flushLocked()
	s.closed = true
	if s.persist != nil {
		if err := s.snapshotLocked(); err != nil {
			s.stats.PersistErrors++
		}
		if err := s.persist.Close(); err != nil {
			s.stats.PersistErrors++
		}
		s.persist = nil
	}
	fns := s.subscribersLocked()
	ops := s.opsSubsLocked()
	s.mu.Unlock()
	s.fanOut(evs, fns)
	deliverOps(ops, StoreOp{Events: evs})
	// Every held watcher — not just those on the final batch's paths —
	// must notice the close and unwind.
	s.wakeAllWatchers()
}

// Crash closes the store the hard way: no final flush, no parting
// snapshot — the data directory is left exactly as the crash-consistency
// machinery (WAL framing, lsn watermarks, torn-tail truncation) would
// find it after a process kill. It exists for crash-recovery tests and
// the recovery benchmark; production shutdown is Close.
func (s *Store) Crash() error {
	s.deliverMu.Lock()
	defer s.deliverMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	p := s.persist
	s.persist = nil
	s.mu.Unlock()
	s.wakeAllWatchers()
	if p == nil {
		return nil
	}
	return p.Close()
}
