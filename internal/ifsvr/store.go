package ifsvr

import (
	"context"
	"errors"
	"sync"
	"time"

	"livedev/internal/clock"
)

// ErrStoreClosed reports an operation on a closed publication store.
var ErrStoreClosed = errors.New("ifsvr: publication store closed")

// ErrClosed is the former name of ErrStoreClosed (the in-memory store it
// named was folded into Store).
//
// Deprecated: match ErrStoreClosed.
var ErrClosed = ErrStoreClosed

// DefaultHistoryLen is the journal capacity a store is created with: how
// many committed versions (across all paths) are retained for Replay.
const DefaultHistoryLen = 256

// StoreEvent is one committed publication fanned out to subscribers.
type StoreEvent struct {
	// Path is the document path that committed.
	Path string
	// Doc is the committed document (its Version and Epoch are final).
	Doc Document
}

// StoreStats counts store activity; all fields are cumulative.
type StoreStats struct {
	// Publishes counts PublishVersioned calls.
	Publishes uint64
	// Commits counts committed document versions (one per fan-out event).
	Commits uint64
	// Coalesced counts publishes absorbed into an already-pending slot —
	// edit-storm publications that never became a distinct version.
	Coalesced uint64
	// Batches counts flush batches that committed at least one document.
	Batches uint64
	// Flushes counts explicit Flush calls (the forced-publication path).
	Flushes uint64
	// Replays counts Replay calls served from the journal.
	Replays uint64
	// ReplayMisses counts Replay calls the journal no longer covered —
	// each forces the caller onto the full-snapshot fallback.
	ReplayMisses uint64
}

// Store is the event-driven publication core: a versioned interface-document
// store with epoch-numbered snapshots, subscriber fan-out, edit-storm
// coalescing, and an epoch-indexed journal for watcher catch-up. It is the
// single Backing implementation: every binding publishes through it (via the
// SDE Manager's PublishInterface), the Interface Server reads from it
// (NewView), and a standalone Server (New or the zero value) owns one with
// coalescing disabled.
//
// Coalescing: with a non-zero flush window, rapid PublishVersioned calls to
// an already-published path are staged, and the window's flush commits each
// path once with the last-written content — a storm of N publications
// becomes one committed version per window. Each path can carry its own
// window (SetPathWindow) so hot classes coalesce harder than cold ones. The
// first publication of a path always commits immediately (the paper's
// "immediately publishes a basic definition", Section 4), and Flush commits
// the staged set synchronously, which is how the forced-publication
// protocol (Section 5.7) keeps its recency guarantee: DLPublisher
// .EnsureCurrent flushes before the "Non Existent Method" reply goes out.
//
// Epochs: every commit batch advances the store epoch; each committed
// document records the epoch it was committed under, giving observers a
// store-wide happened-before order across paths.
//
// Journal: the last HistoryLen committed versions are retained, and
// Replay(path, afterEpoch) returns the committed versions of a path a
// reconnecting watcher missed — the streaming watch transport's catch-up
// path, which turns a reconnect into a delta instead of a full fetch.
type Store struct {
	window  time.Duration
	clk     clock.Clock
	histLen int

	mu           sync.Mutex
	docs         map[string]Document
	retired      map[string]uint64   // removed paths → last committed version
	pending      map[string]Document // staged content awaiting a flush
	pendingOrder []string
	deadlines    map[string]time.Time // per-path commit deadline of staged content
	pathWindows  map[string]time.Duration
	timer        clock.Timer
	timerOn      bool
	timerAt      time.Time
	epoch        uint64
	journal      []StoreEvent // commit-ordered ring, capacity histLen
	floorEpoch   uint64       // journal covers epochs in (floorEpoch, epoch]
	stats        StoreStats
	changed      chan struct{} // closed and replaced on every commit batch
	subs         map[uint64]func(StoreEvent)
	nextSub      uint64
	closed       bool

	// deliverMu serializes commit+fan-out so events arrive in commit order
	// even when a timer flush races an explicit Flush or an immediate
	// publish. It is always acquired before mu.
	deliverMu sync.Mutex
}

var _ Backing = (*Store)(nil)

// NewStore returns a store with the given flush window (0 disables
// coalescing: every publish commits immediately) and the default journal
// capacity. clk drives the flush timer; nil means the real clock.
func NewStore(window time.Duration, clk clock.Clock) *Store {
	if clk == nil {
		clk = clock.Real{}
	}
	return &Store{
		window:    window,
		clk:       clk,
		histLen:   DefaultHistoryLen,
		docs:      make(map[string]Document),
		retired:   make(map[string]uint64),
		pending:   make(map[string]Document),
		deadlines: make(map[string]time.Time),
		changed:   make(chan struct{}),
		subs:      make(map[uint64]func(StoreEvent)),
	}
}

// FlushWindow returns the configured store-wide coalescing window.
func (s *Store) FlushWindow() time.Duration { return s.window }

// SetHistoryLen resizes the replay journal to retain the last n committed
// versions (n < 0 disables the journal entirely; 0 restores the default).
// Shrinking evicts the oldest entries, moving the replay floor forward.
func (s *Store) SetHistoryLen(n int) {
	if n == 0 {
		n = DefaultHistoryLen
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 0 {
		s.histLen = 0
		s.journal = nil
		s.floorEpoch = s.epoch
		return
	}
	s.histLen = n
	s.trimJournalLocked()
}

// HistoryLen returns the journal capacity (0 when disabled).
func (s *Store) HistoryLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.histLen
}

// SetPathWindow overrides the coalescing window for one path — hot paths
// can coalesce harder (longer window) than the store-wide setting, cold
// paths softer (shorter, or 0 for immediate commits). A zero-or-negative
// override commits that path's publications immediately. The override
// applies to publications staged after the call and is cleared by Remove.
func (s *Store) SetPathWindow(path string, window time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pathWindows == nil {
		s.pathWindows = make(map[string]time.Duration)
	}
	s.pathWindows[path] = window
}

// windowFor resolves the effective coalescing window of path. Caller holds
// s.mu.
func (s *Store) windowFor(path string) time.Duration {
	if w, ok := s.pathWindows[path]; ok {
		return w
	}
	return s.window
}

// Epoch returns the current commit epoch.
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Publish is PublishVersioned without a descriptor version.
func (s *Store) Publish(path, contentType, content string) uint64 {
	return s.PublishVersioned(path, contentType, content, 0)
}

// PublishVersioned implements Backing: store content under path. With
// coalescing enabled and the path already published, the write is staged
// until the path's flush window elapses (or Flush runs), and the returned
// version is the version the path will carry after that flush. Staged
// writes to the same path coalesce — only the last content commits — so an
// earlier caller in the same window receives the version its superseded
// content never actually had; treat the return as "the path's next
// committed version", not a receipt for this exact content.
func (s *Store) PublishVersioned(path, contentType, content string, descriptorVersion uint64) uint64 {
	staged := Document{
		Content:           content,
		ContentType:       contentType,
		DescriptorVersion: descriptorVersion,
	}
	s.deliverMu.Lock()
	defer s.deliverMu.Unlock()
	s.mu.Lock()
	s.stats.Publishes++
	if s.closed {
		s.mu.Unlock()
		return 0
	}
	_, published := s.docs[path]
	window := s.windowFor(path)
	if window <= 0 || !published {
		evs := s.commitLocked([]string{path}, map[string]Document{path: staged})
		ver := s.docs[path].Version
		fns := s.subscribersLocked()
		s.mu.Unlock()
		fanOut(evs, fns)
		return ver
	}
	if _, dup := s.pending[path]; dup {
		s.stats.Coalesced++
	} else {
		s.pendingOrder = append(s.pendingOrder, path)
		s.deadlines[path] = s.clk.Now().Add(window)
		s.rearmLocked()
	}
	s.pending[path] = staged
	ver := s.docs[path].Version + 1
	s.mu.Unlock()
	return ver
}

// commitLocked commits the given paths (drawing content from contents),
// bumping the epoch once for the batch and journaling each committed
// version. Caller holds s.mu and must fan the returned events out after
// unlocking.
func (s *Store) commitLocked(order []string, contents map[string]Document) []StoreEvent {
	if len(order) == 0 {
		return nil
	}
	s.epoch++
	s.stats.Batches++
	evs := make([]StoreEvent, 0, len(order))
	for _, path := range order {
		staged := contents[path]
		d := s.docs[path]
		if d.Version == 0 {
			// A republication of a retired path resumes its version
			// sequence so parked watchers still wake on it.
			d.Version = s.retired[path]
			delete(s.retired, path)
		}
		d.Content = staged.Content
		d.ContentType = staged.ContentType
		d.DescriptorVersion = staged.DescriptorVersion
		d.Epoch = s.epoch
		d.Version++
		s.docs[path] = d
		s.stats.Commits++
		evs = append(evs, StoreEvent{Path: path, Doc: d})
	}
	s.journalLocked(evs)
	close(s.changed)
	s.changed = make(chan struct{})
	return evs
}

// journalLocked appends the batch's events to the replay journal, evicting
// the oldest entries past the capacity. Caller holds s.mu.
func (s *Store) journalLocked(evs []StoreEvent) {
	if s.histLen <= 0 {
		s.floorEpoch = s.epoch
		return
	}
	s.journal = append(s.journal, evs...)
	s.trimJournalLocked()
}

// trimJournalLocked evicts journal entries past the capacity, advancing the
// replay floor to the newest evicted epoch. Caller holds s.mu.
func (s *Store) trimJournalLocked() {
	over := len(s.journal) - s.histLen
	if over <= 0 {
		return
	}
	s.floorEpoch = s.journal[over-1].Doc.Epoch
	copy(s.journal, s.journal[over:])
	s.journal = s.journal[:s.histLen]
}

// Replay returns the committed versions of path with an epoch greater than
// afterEpoch, oldest first — the delta a watcher that last saw afterEpoch
// missed. It reports false when the journal no longer covers that range
// (the entries were evicted, or the journal is disabled); the caller must
// fall back to a full snapshot of the current document.
func (s *Store) Replay(path string, afterEpoch uint64) ([]Document, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if afterEpoch < s.floorEpoch {
		s.stats.ReplayMisses++
		return nil, false
	}
	var docs []Document
	for _, ev := range s.journal {
		if ev.Path == path && ev.Doc.Epoch > afterEpoch {
			docs = append(docs, ev.Doc)
		}
	}
	s.stats.Replays++
	return docs, true
}

// rearmLocked (re)schedules the flush timer for the earliest pending
// deadline. Caller holds s.mu.
func (s *Store) rearmLocked() {
	var next time.Time
	for _, p := range s.pendingOrder {
		if dl := s.deadlines[p]; next.IsZero() || dl.Before(next) {
			next = dl
		}
	}
	if next.IsZero() {
		if s.timer != nil {
			s.timer.Stop()
			s.timer = nil
		}
		s.timerOn = false
		return
	}
	if s.timerOn && !s.timerAt.After(next) {
		return // the armed timer fires early enough
	}
	if s.timer != nil {
		s.timer.Stop()
	}
	d := next.Sub(s.clk.Now())
	if d < 0 {
		d = 0
	}
	s.timerAt = next
	s.timerOn = true
	s.timer = s.clk.AfterFunc(d, s.onFlushTimer)
}

// dueLocked stages-out everything whose deadline has passed. Caller holds
// s.mu.
func (s *Store) dueLocked(now time.Time) (order []string, contents map[string]Document) {
	contents = make(map[string]Document)
	keep := s.pendingOrder[:0]
	for _, p := range s.pendingOrder {
		if s.deadlines[p].After(now) {
			keep = append(keep, p)
			continue
		}
		order = append(order, p)
		contents[p] = s.pending[p]
		delete(s.pending, p)
		delete(s.deadlines, p)
	}
	s.pendingOrder = keep
	return order, contents
}

// flushLocked stages-out and commits everything pending. Caller holds s.mu.
func (s *Store) flushLocked() []StoreEvent {
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	s.timerOn = false
	if len(s.pendingOrder) == 0 {
		return nil
	}
	order, contents := s.pendingOrder, s.pending
	s.pendingOrder = nil
	s.pending = make(map[string]Document)
	s.deadlines = make(map[string]time.Time)
	return s.commitLocked(order, contents)
}

func (s *Store) onFlushTimer() {
	s.deliverMu.Lock()
	defer s.deliverMu.Unlock()
	s.mu.Lock()
	s.timerOn = false
	s.timer = nil
	var evs []StoreEvent
	if !s.closed {
		order, contents := s.dueLocked(s.clk.Now())
		evs = s.commitLocked(order, contents)
		s.rearmLocked() // paths with longer windows stay staged
	}
	fns := s.subscribersLocked()
	s.mu.Unlock()
	fanOut(evs, fns)
}

// Flush synchronously commits every staged publication — the forced-
// publication path: after Flush returns, Get observes everything published
// before the call.
func (s *Store) Flush() {
	s.deliverMu.Lock()
	defer s.deliverMu.Unlock()
	s.mu.Lock()
	s.stats.Flushes++
	var evs []StoreEvent
	if !s.closed {
		evs = s.flushLocked()
	}
	fns := s.subscribersLocked()
	s.mu.Unlock()
	fanOut(evs, fns)
}

// subscribersLocked snapshots the subscriber list. Caller holds s.mu.
func (s *Store) subscribersLocked() []func(StoreEvent) {
	if len(s.subs) == 0 {
		return nil
	}
	fns := make([]func(StoreEvent), 0, len(s.subs))
	for _, fn := range s.subs {
		fns = append(fns, fn)
	}
	return fns
}

// fanOut delivers committed events to the snapshotted subscribers. Callers
// hold deliverMu (acquired before the commit), which is what keeps
// delivery in commit order across concurrent committers. Callbacks run on
// the committing goroutine and must not call back into the store's
// publish/flush paths.
func fanOut(evs []StoreEvent, fns []func(StoreEvent)) {
	for _, ev := range evs {
		for _, fn := range fns {
			fn(ev)
		}
	}
}

// Subscribe registers fn for every committed publication and returns a
// cancel function. An event already being delivered when cancel returns may
// still invoke fn once.
func (s *Store) Subscribe(fn func(StoreEvent)) (cancel func()) {
	s.mu.Lock()
	id := s.nextSub
	s.nextSub++
	s.subs[id] = fn
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		delete(s.subs, id)
		s.mu.Unlock()
	}
}

// Remove implements Backing: retire a path when its server closes. The
// committed document disappears (Get reports it unpublished), staged writes
// and any per-path window override for it are dropped, and — because the
// "first publication commits immediately" rule keys on committed presence —
// a re-registered server's fresh documents commit synchronously instead of
// sitting out a flush window behind the dead server's entries. The retired
// version floor is kept so republication continues the sequence.
func (s *Store) Remove(path string) {
	s.deliverMu.Lock()
	defer s.deliverMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.docs[path]; ok {
		s.retired[path] = d.Version
		delete(s.docs, path)
	}
	delete(s.pathWindows, path)
	if _, staged := s.pending[path]; staged {
		delete(s.pending, path)
		delete(s.deadlines, path)
		order := s.pendingOrder[:0]
		for _, p := range s.pendingOrder {
			if p != path {
				order = append(order, p)
			}
		}
		s.pendingOrder = order
	}
}

// Get implements Backing: the committed document at path. Staged (not yet
// flushed) content is not visible.
func (s *Store) Get(path string) (Document, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.docs[path]
	if !ok {
		return Document{}, ErrNotFound
	}
	return d, nil
}

// Version implements Backing.
func (s *Store) Version(path string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.docs[path].Version
}

// Paths implements Backing.
func (s *Store) Paths() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ps := make([]string, 0, len(s.docs))
	for p := range s.docs {
		ps = append(ps, p)
	}
	return ps
}

// Wait implements Backing: block until a version newer than after is
// committed at path, ctx ends, or the store closes.
func (s *Store) Wait(ctx context.Context, path string, after uint64) (Document, error) {
	for {
		s.mu.Lock()
		d, ok := s.docs[path]
		ch := s.changed
		closed := s.closed
		s.mu.Unlock()
		if ok && d.Version > after {
			return d, nil
		}
		if closed {
			return Document{}, ErrStoreClosed
		}
		select {
		case <-ctx.Done():
			return Document{}, ctx.Err()
		case <-ch:
		}
	}
}

// Close flushes staged publications, wakes waiters, and stops the flush
// timer. Subsequent publishes are dropped.
func (s *Store) Close() {
	s.deliverMu.Lock()
	defer s.deliverMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	evs := s.flushLocked()
	s.closed = true
	close(s.changed)
	s.changed = make(chan struct{})
	fns := s.subscribersLocked()
	s.mu.Unlock()
	fanOut(evs, fns)
}
