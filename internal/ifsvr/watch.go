package ifsvr

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// The watch protocol, client side.
//
// A watch is one long-poll round: GET the document URL with
// "?watch=1&after=N". The server parks the request until a version newer
// than N is committed (200 with the document) or its poll window elapses
// (304 Not Modified). WatchContext performs a single round and surfaces the
// 304 as ErrNotModified; WatchNewer loops rounds until a newer version
// arrives or ctx ends, which is the shape CDE backends and the bridge use
// for push-invalidated interface caches.

// WatchContext performs one watch poll against url, waiting for a document
// version newer than after. It returns ErrNotModified when the server's
// poll window elapsed first (poll again), ErrNotFound when the document has
// never been published, and ctx.Err() (wrapped) when ctx ended.
func WatchContext(ctx context.Context, client *http.Client, url string, after uint64) (Document, error) {
	if client == nil {
		client = http.DefaultClient
	}
	sep := "?"
	if strings.ContainsRune(url, '?') {
		sep = "&"
	}
	watchURL := url + sep + "watch=1&after=" + strconv.FormatUint(after, 10)
	if client.Timeout > 0 {
		// The HTTP client caps whole round trips: ask the server to answer
		// 304 comfortably inside that cap, or every idle poll would die as
		// a client-side timeout error instead of a clean re-poll.
		hint := client.Timeout * 3 / 4
		watchURL += "&timeout=" + hint.String()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, watchURL, nil)
	if err != nil {
		return Document{}, fmt.Errorf("ifsvr: building watch request for %s: %w", url, err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return Document{}, fmt.Errorf("ifsvr: watching %s: %w", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	switch resp.StatusCode {
	case http.StatusOK:
		data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		if err != nil {
			return Document{}, fmt.Errorf("ifsvr: reading %s: %w", url, err)
		}
		return Document{
			Content:           string(data),
			Version:           headerUint(resp, VersionHeader),
			DescriptorVersion: headerUint(resp, DescriptorVersionHeader),
			Epoch:             headerUint(resp, EpochHeader),
			Generation:        headerUint(resp, GenerationHeader),
			ContentType:       resp.Header.Get("Content-Type"),
		}, nil
	case http.StatusNotModified:
		return Document{
			Version:           headerUint(resp, VersionHeader),
			DescriptorVersion: headerUint(resp, DescriptorVersionHeader),
			Epoch:             headerUint(resp, EpochHeader),
			Generation:        headerUint(resp, GenerationHeader),
		}, ErrNotModified
	case http.StatusNotFound:
		return Document{}, fmt.Errorf("%w: %s", ErrNotFound, url)
	default:
		return Document{}, fmt.Errorf("ifsvr: watching %s: HTTP %d", url, resp.StatusCode)
	}
}

// WatchNewer polls url until a document version newer than after is
// published, looping across 304 poll windows. It returns the new document,
// or an error when ctx ends or the watch fails for another reason.
//
// A 304 reporting a current version *below* after means the server's state
// regressed past the caller's cursor — a restarted server that did not
// recover the old state (per-path versions are otherwise monotone, even
// across retirement). Parking on a version such a server will not reach
// for a long time would wedge the watcher, so WatchNewer fetches and
// returns the current document instead; the caller detects the restart by
// its Generation (and regressed Version) and resets its cursors.
func WatchNewer(ctx context.Context, client *http.Client, url string, after uint64) (Document, error) {
	for {
		doc, err := WatchContext(ctx, client, url, after)
		switch {
		case err == nil:
			return doc, nil
		case errors.Is(err, ErrNotModified):
			if doc.Version > 0 && doc.Version < after {
				return FetchContext(ctx, client, url)
			}
			continue
		default:
			if ctx.Err() != nil {
				return Document{}, fmt.Errorf("ifsvr: watch of %s ended: %w", url, ctx.Err())
			}
			return Document{}, err
		}
	}
}
