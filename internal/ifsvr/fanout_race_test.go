package ifsvr

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestStreamFanoutSharedBuffersByteIdentical is the shared-marshaling
// storm: N watchers hold streams while a publisher commits a burst of
// versions. Every commit is marshaled once and the same []byte is written
// to every connection, so (a) for each epoch, every connection must
// observe the identical event — same version, same content, same epoch —
// and (b) no buffer may be mutated after it was handed out: a
// reuse-after-send would show up as torn or mismatched payloads across
// connections (and as a data race under -race, which this test is run
// with in CI).
func TestStreamFanoutSharedBuffersByteIdentical(t *testing.T) {
	watchers, edits := 1000, 30
	if testing.Short() {
		watchers, edits = 100, 10
	}
	st, url := startStreamServer(t, 0)
	const path = "/wsdl/S.wsdl"
	st.PublishVersioned(path, "text/xml", "<v1/>", 1)

	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = watchers + 4
	hc := &http.Client{Transport: tr}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup

	// Each watcher records, per epoch, the rendered event it observed.
	type obs struct {
		mu     sync.Mutex
		events map[uint64]string
	}
	final := uint64(1 + edits)
	all := make([]obs, watchers)
	for w := 0; w < watchers; w++ {
		all[w].events = make(map[uint64]string, edits+1)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ctx.Err() == nil {
				_ = WatchStream(ctx, hc, url, 0, func(ev StreamEvent) {
					key := fmt.Sprintf("v%d|dv%d|e%d|%s|%s",
						ev.Doc.Version, ev.Doc.DescriptorVersion, ev.Doc.Epoch, ev.Doc.ContentType, ev.Doc.Content)
					all[w].mu.Lock()
					if prev, dup := all[w].events[ev.Doc.Epoch]; dup && prev != key {
						t.Errorf("watcher %d: epoch %d delivered twice with different payloads:\n%s\n%s", w, ev.Doc.Epoch, prev, key)
					}
					all[w].events[ev.Doc.Epoch] = key
					all[w].mu.Unlock()
				})
			}
		}(w)
	}

	// The storm, committed while watchers connect and stream concurrently.
	for i := 2; i <= int(final); i++ {
		st.PublishVersioned(path, "text/xml", fmt.Sprintf("<v%d/>", i), uint64(i))
		time.Sleep(time.Millisecond)
	}

	// Convergence: every watcher has observed the final version.
	deadline := time.Now().Add(60 * time.Second)
	for w := 0; w < watchers; w++ {
		for {
			all[w].mu.Lock()
			_, done := all[w].events[final] // epoch == version here: one batch per publish
			all[w].mu.Unlock()
			if done {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("watcher %d never observed the final version", w)
			}
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	wg.Wait()

	// Cross-connection byte-identity: for each epoch, every watcher that
	// observed it observed exactly the same rendering, and that rendering
	// matches the committed content (no reuse-after-send corruption).
	for epoch := uint64(1); epoch <= final; epoch++ {
		want := fmt.Sprintf("v%d|dv%d|e%d|text/xml|<v%d/>", epoch, epoch, epoch, epoch)
		for w := 0; w < watchers; w++ {
			all[w].mu.Lock()
			got, ok := all[w].events[epoch]
			all[w].mu.Unlock()
			if !ok {
				continue // connected mid-storm; catch-up starts at its epoch
			}
			if got != want {
				t.Fatalf("watcher %d epoch %d observed %q, want %q", w, epoch, got, want)
			}
		}
	}
}
