// Package ifsvr implements the paper's Interface Server: "a simple HTTP
// server that publishes the WSDL documents to the public domain"
// (Section 5.1) — and, shared by the CORBA subsystem for simplicity
// (Section 5.2), the CORBA-IDL documents and IORs as well. Documents are
// versioned; every response carries the document's version in the
// X-Interface-Version header, which is what lets the CDE (and the
// experiments) observe the recency guarantees of Sections 5.7 and 6.
//
// Since the publication-core refactor the server is a read view over a
// Backing document store — the coalescing, journaled publication Store in
// this package, which the SDE Manager shares with every binding and a
// standalone New() server owns privately (window 0). The view adds the two
// watch transports: a long-poll GET with "?watch=1&after=N" blocks until a
// version newer than N is published (or the poll window elapses, answered
// with 304 Not Modified), and a streaming GET with "?watch=stream&after=N"
// holds one text/event-stream connection per watcher, serving the journal
// replay of everything committed after epoch N followed by live fan-out.
// See docs/watch-protocol.md for the wire protocol of both.
package ifsvr

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"
)

// VersionHeader carries the published document version (publish count) on
// HTTP responses.
const VersionHeader = "X-Interface-Version"

// DescriptorVersionHeader carries the interface-descriptor version the
// document was generated from — the monotone version the Section 6 recency
// guarantee is stated over.
const DescriptorVersionHeader = "X-Descriptor-Version"

// EpochHeader carries the backing store's publication epoch at which the
// document was committed (0 for stores that do not number epochs).
const EpochHeader = "X-Interface-Epoch"

// GenerationHeader carries the backing store's restart generation — a
// nonzero value identifying the store incarnation serving the response.
// It is what lets a watch client distinguish "same server whose journal
// evicted my epoch" (snapshot event, unchanged generation) from "a new
// server" (generation change; the new server additionally lost the old
// state when its epoch regressed). Absent on servers predating it.
const GenerationHeader = "X-Store-Generation"

// StatsPath is the reserved path serving the backing store's counters as
// JSON (StoreStats, including the Durability block on durable stores). It
// exists for operational introspection — ifdump -stats and the SIGQUIT
// dump read the same numbers — and is only served when the backing store
// exposes Stats.
const StatsPath = "/.stats"

// ErrNotFound reports a fetch of a never-published document.
var ErrNotFound = errors.New("ifsvr: document not published")

// ErrNotModified reports a watch poll that elapsed with no newer version —
// the caller should simply poll again.
var ErrNotModified = errors.New("ifsvr: document not modified")

// Document is one published interface description.
type Document struct {
	// Content is the document text (WSDL, IDL, or stringified IOR).
	Content string
	// Version increments with each publication of this path.
	Version uint64
	// DescriptorVersion is the interface-descriptor version the document
	// was generated from (0 for unversioned documents such as IORs).
	DescriptorVersion uint64
	// Epoch is the backing store's commit epoch for this document (0 when
	// the store does not number epochs).
	Epoch uint64
	// Generation is the serving store's restart generation. It is filled
	// on documents fetched over HTTP (from GenerationHeader); 0 means the
	// server predates the header. The store does not record it per
	// document — an incarnation serves every document under one value.
	Generation uint64
	// ContentType is the MIME type served.
	ContentType string
}

// Backing is the document store a Server reads from (and forwards writes
// to). Store is the one implementation: the SDE Manager backs its Interface
// Server with its shared coalescing store, and New() owns a private one
// with coalescing disabled. A Backing that additionally implements Journal
// (as Store does) gets delta catch-up on the streaming watch transport.
type Backing interface {
	// PublishVersioned stores content under path and returns the version
	// the document has (or, in a coalescing store, will have) committed.
	PublishVersioned(path, contentType, content string, descriptorVersion uint64) uint64
	// Get returns the current committed document at path.
	Get(path string) (Document, error)
	// Version returns the current committed version of path (0 if never
	// published).
	Version(path string) uint64
	// Paths returns all published paths (unordered).
	Paths() []string
	// Remove retires path: Get reports it unpublished and staged writes are
	// dropped, but a later republication continues the version sequence, so
	// parked watchers see it. Bindings call it when their server closes.
	Remove(path string)
	// Wait blocks until a version newer than after is committed at path,
	// the context ends (returning ctx.Err()), or the store closes.
	Wait(ctx context.Context, path string, after uint64) (Document, error)
}

// Generational is the optional Backing capability behind the restart-
// generation header; Store implements it. A Backing without it serves no
// GenerationHeader, like a server predating the protocol.
type Generational interface {
	// Generation returns the store's incarnation identity (nonzero).
	Generation() uint64
}

// backingGeneration resolves the store generation of b (0 when b lacks the
// capability).
func backingGeneration(b Backing) uint64 {
	if g, ok := b.(Generational); ok {
		return g.Generation()
	}
	return 0
}

// Server is the Interface Server: an HTTP read view over a Backing store.
// The zero value (and New) reads from its own in-memory store; NewView
// reads from a caller-provided store. Call Start to also serve documents
// over HTTP.
type Server struct {
	initStore sync.Once
	store     Backing
	owned     *Store // set when the server created its own store (New, zero value)

	// HeartbeatInterval paces the liveness comments of idle streaming
	// watches (0 means DefaultHeartbeat). Set it before Start.
	HeartbeatInterval time.Duration

	// MaxWatcherLag bounds how many committed-but-undelivered events a
	// streaming watcher may have pending before its stream is evicted with
	// a terminal "eviction" event (the client reconnects through the
	// ordinary replay path). 0 disables the budget: a laggard is then
	// bounded only by the journal capacity (snapshot-reset past the floor)
	// and the write deadline. Set it before Start.
	MaxWatcherLag int

	// StreamWriteTimeout bounds each write on a held stream (events,
	// heartbeats) via http.ResponseController.SetWriteDeadline: a peer
	// that cannot absorb a write within it is evicted instead of pinning
	// the connection's delivery pump. 0 means DefaultStreamWriteTimeout;
	// negative disables the deadline. Set it before Start.
	StreamWriteTimeout time.Duration

	// LeaderURL, when set, marks this server a read-only replica fronting
	// a replication follower: non-GET requests are answered with
	// 421 Misdirected Request and a Location header naming the leader,
	// where publications belong. Set it before Start.
	LeaderURL string

	auxMu sync.RWMutex
	aux   map[string]http.Handler

	// sweep is the shared heartbeat ticker over every held stream's
	// delivery pump — one goroutine, not one timer per connection.
	sweepMu sync.Mutex
	sweep   *PumpSweep

	// drainCtx is cancelled when a graceful Shutdown begins: parked watch
	// polls answer immediately and held streams end with a terminal
	// "draining" frame so clients reconnect to another replica instead of
	// waiting out their poll windows. Lazily created so the zero-value
	// Server keeps working.
	drainMu     sync.Mutex
	drainCtx    context.Context
	drainCancel context.CancelFunc

	httpSrv  *http.Server
	listener net.Listener
	baseURL  string
	done     chan struct{}
}

// New returns an interface server over its own store (coalescing disabled:
// every publication commits immediately).
func New() *Server {
	st := NewStore(0, nil)
	return &Server{store: st, owned: st}
}

// NewView returns an interface server that serves (and publishes into) the
// given backing store — the read-view arrangement the SDE Manager uses with
// the publication core.
func NewView(store Backing) *Server {
	return &Server{store: store}
}

// backing returns the store, lazily creating an owned one so the zero-value
// Server stays usable.
func (s *Server) backing() Backing {
	s.initStore.Do(func() {
		if s.store == nil {
			st := NewStore(0, nil)
			s.store = st
			s.owned = st
		}
	})
	return s.store
}

// Store returns the backing store.
func (s *Server) Store() Backing { return s.backing() }

// drainContext returns the context cancelled when the server starts
// draining, creating it on first use.
func (s *Server) drainContext() context.Context {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.drainCtx == nil {
		s.drainCtx, s.drainCancel = context.WithCancel(context.Background())
	}
	return s.drainCtx
}

// startDrain signals every held poll and stream that the server is
// draining. Idempotent.
func (s *Server) startDrain() {
	s.drainContext()
	s.drainMu.Lock()
	cancel := s.drainCancel
	s.drainMu.Unlock()
	cancel()
}

// Draining reports whether a graceful Shutdown has begun.
func (s *Server) Draining() bool { return s.drainContext().Err() != nil }

// Publish stores content under path (e.g. "/wsdl/Mail") and returns the new
// version. Republishing the same path bumps the version even if the content
// is unchanged; the publisher avoids redundant publications itself.
func (s *Server) Publish(path, contentType, content string) uint64 {
	return s.backing().PublishVersioned(path, contentType, content, 0)
}

// PublishVersioned is Publish carrying the interface-descriptor version the
// document was generated from.
func (s *Server) PublishVersioned(path, contentType, content string, descriptorVersion uint64) uint64 {
	return s.backing().PublishVersioned(path, contentType, content, descriptorVersion)
}

// Get returns the current document at path.
func (s *Server) Get(path string) (Document, error) { return s.backing().Get(path) }

// Version returns the current version of path (0 if never published).
func (s *Server) Version(path string) uint64 { return s.backing().Version(path) }

// Paths returns all published paths (unordered).
func (s *Server) Paths() []string { return s.backing().Paths() }

// Remove retires a published path (see Backing.Remove).
func (s *Server) Remove(path string) { s.backing().Remove(path) }

// maxWatchWait caps how long one watch poll is held open before the server
// answers 304 Not Modified; clients simply poll again, so the cap only
// bounds how long an idle connection is parked.
const maxWatchWait = 25 * time.Second

// ServeHTTP implements http.Handler: GET returns the document with its
// version headers. With "?watch=1&after=N" the request long-polls until a
// version newer than N is committed (200 with the new document), or the
// poll window elapses (304 Not Modified with the current version headers).
// With "?watch=stream&after=N" the request becomes a server-sent-event
// stream: journal replay of everything committed after epoch N, then one
// event per live commit, on a single held connection (see stream.go).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := s.auxHandler(r.URL.Path); h != nil {
		h.ServeHTTP(w, r)
		return
	}
	if r.Method != http.MethodGet {
		if s.LeaderURL != "" {
			// A replica does not take writes: misdirect the request to the
			// leader, whose address rides in Location.
			w.Header().Set("Location", s.LeaderURL+r.URL.RequestURI())
			http.Error(w, "read-only replica; publish to the leader at "+s.LeaderURL,
				http.StatusMisdirectedRequest)
			return
		}
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if r.URL.Path == StatsPath {
		s.serveStats(w)
		return
	}
	q := r.URL.Query()
	if q.Get("watch") == "stream" {
		s.serveStream(w, r, q)
		return
	}
	if q.Get("watch") != "" {
		s.serveWatch(w, r, q)
		return
	}
	st := s.backing()
	d, err := st.Get(r.URL.Path)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	writeDoc(w, d, backingGeneration(st))
}

// Handle mounts an auxiliary handler on a reserved path (e.g. the
// replication subsystem's WAL-tail endpoint), checked before the document
// routes and exempt from the GET-only rule. Later mounts on the same path
// replace earlier ones; a nil handler unmounts.
func (s *Server) Handle(path string, h http.Handler) {
	s.auxMu.Lock()
	if s.aux == nil {
		s.aux = make(map[string]http.Handler)
	}
	if h == nil {
		delete(s.aux, path)
	} else {
		s.aux[path] = h
	}
	s.auxMu.Unlock()
}

// auxHandler resolves an auxiliary mount (nil if none).
func (s *Server) auxHandler(path string) http.Handler {
	s.auxMu.RLock()
	h := s.aux[path]
	s.auxMu.RUnlock()
	return h
}

// statsBacking is the optional Backing capability behind StatsPath; Store
// implements it.
type statsBacking interface {
	Stats() StoreStats
}

func (s *Server) serveStats(w http.ResponseWriter) {
	b, ok := s.backing().(statsBacking)
	if !ok {
		http.Error(w, "backing store exposes no stats", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(b.Stats())
}

func (s *Server) serveWatch(w http.ResponseWriter, r *http.Request, q url.Values) {
	after, _ := strconv.ParseUint(q.Get("after"), 10, 64)
	wait := maxWatchWait
	if t := q.Get("timeout"); t != "" {
		if d, err := time.ParseDuration(t); err == nil && d > 0 && d < wait {
			wait = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()
	// A drain must unpark this poll immediately: the Wait below would
	// otherwise hold its window open and stall Shutdown for up to
	// maxWatchWait.
	stopDrain := context.AfterFunc(s.drainContext(), cancel)
	defer stopDrain()
	// Watch responses are point-in-time answers to a version question;
	// a cached one would defeat the protocol.
	w.Header().Set("Cache-Control", "no-store")
	st := s.backing()
	d, err := st.Wait(ctx, r.URL.Path, after)
	// The generation is read AFTER the park: a replica can reset (adopt a
	// new leader generation) while the poll is held, and the response must
	// name the incarnation that produced it.
	gen := backingGeneration(st)
	switch {
	case err == nil:
		writeDoc(w, d, gen)
	case r.Context().Err() != nil:
		// Client went away; nothing useful to write.
	case s.Draining():
		// The server is going away: answer now (instead of holding the
		// window) with an error the watch client treats as a failed poll,
		// so it rotates to another replica. Connection: close takes the
		// conn off keep-alive, letting Shutdown finish promptly.
		w.Header().Set("Connection", "close")
		http.Error(w, "server draining; reconnect to another replica", http.StatusServiceUnavailable)
	case errors.Is(err, context.DeadlineExceeded):
		// Poll window elapsed with no newer version. The headers carry the
		// current version, epoch, AND generation so the poller can resync
		// its cursors — and detect a restarted server — without a document
		// fetch; Retry-After tells clients and intermediaries the polite
		// re-poll pacing after an idle window.
		cur, getErr := st.Get(r.URL.Path)
		if getErr != nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Retry-After", "1")
		writeHeaders(w, cur, gen)
		w.WriteHeader(http.StatusNotModified)
	default:
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	}
}

func writeHeaders(w http.ResponseWriter, d Document, gen uint64) {
	w.Header().Set(VersionHeader, strconv.FormatUint(d.Version, 10))
	w.Header().Set(DescriptorVersionHeader, strconv.FormatUint(d.DescriptorVersion, 10))
	w.Header().Set(EpochHeader, strconv.FormatUint(d.Epoch, 10))
	if gen != 0 {
		w.Header().Set(GenerationHeader, strconv.FormatUint(gen, 10))
	}
}

func writeDoc(w http.ResponseWriter, d Document, gen uint64) {
	w.Header().Set("Content-Type", d.ContentType)
	writeHeaders(w, d, gen)
	_, _ = io.WriteString(w, d.Content)
}

// Start begins serving over HTTP on addr ("127.0.0.1:0" for an ephemeral
// port) and returns the base URL, e.g. "http://127.0.0.1:41234".
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("ifsvr: listen %s: %w", addr, err)
	}
	s.listener = ln
	s.baseURL = "http://" + ln.Addr().String()
	s.httpSrv = &http.Server{Handler: s, ReadHeaderTimeout: 10 * time.Second}
	// Cleartext HTTP/2 with HTTP/1.1 preface sniffing: watch streams from
	// one client process coalesce onto one TCP connection.
	EnableH2C(s.httpSrv)
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		_ = s.httpSrv.Serve(ln)
	}()
	return s.baseURL, nil
}

// BaseURL returns the server's base URL ("" before Start).
func (s *Server) BaseURL() string { return s.baseURL }

// Shutdown gracefully drains the server: parked watch polls answer
// immediately, held streams end with a terminal "draining" frame so their
// clients reconnect elsewhere, the listener stops accepting connections,
// and in-flight requests run to completion (bounded by ctx, after which
// remaining connections are abandoned to Close). Unlike Close it never
// closes the backing store — draining is reversible right up to Stop.
// Safe to call before Start (it only marks the server draining).
func (s *Server) Shutdown(ctx context.Context) error {
	s.startDrain()
	if s.httpSrv == nil {
		return nil
	}
	err := s.httpSrv.Shutdown(ctx)
	if err == nil {
		<-s.done
	}
	return err
}

// Close stops the HTTP server (no-op if Start was never called) and, when
// the server owns its store (New, zero value), closes it so parked Wait
// callers and held streams drain. A caller-provided Backing (NewView) is
// not closed — its owner is.
func (s *Server) Close() error {
	s.backing() // materialize so a zero-value Close is still well-defined
	if s.owned != nil {
		s.owned.Close()
	}
	if s.httpSrv == nil {
		return nil
	}
	err := s.httpSrv.Close()
	<-s.done
	return err
}

// Fetch is FetchContext with a background context.
//
// Deprecated: use FetchContext so the round-trip can be cancelled.
func Fetch(client *http.Client, url string) (Document, error) {
	return FetchContext(context.Background(), client, url)
}

// FetchContext retrieves a document over HTTP — the client-side counterpart
// used by the CDE. Cancelling ctx aborts the round-trip.
func FetchContext(ctx context.Context, client *http.Client, url string) (Document, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return Document{}, fmt.Errorf("ifsvr: building request for %s: %w", url, err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return Document{}, fmt.Errorf("ifsvr: fetching %s: %w", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return Document{}, fmt.Errorf("ifsvr: fetching %s: HTTP %d", url, resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return Document{}, fmt.Errorf("ifsvr: reading %s: %w", url, err)
	}
	return Document{
		Content:           string(data),
		Version:           headerUint(resp, VersionHeader),
		DescriptorVersion: headerUint(resp, DescriptorVersionHeader),
		Epoch:             headerUint(resp, EpochHeader),
		Generation:        headerUint(resp, GenerationHeader),
		ContentType:       resp.Header.Get("Content-Type"),
	}, nil
}

func headerUint(resp *http.Response, name string) uint64 {
	v, _ := strconv.ParseUint(strings.TrimSpace(resp.Header.Get(name)), 10, 64)
	return v
}
