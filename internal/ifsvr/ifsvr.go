// Package ifsvr implements the paper's Interface Server: "a simple HTTP
// server that publishes the WSDL documents to the public domain"
// (Section 5.1) — and, shared by the CORBA subsystem for simplicity
// (Section 5.2), the CORBA-IDL documents and IORs as well. Documents are
// versioned; every response carries the document's version in the
// X-Interface-Version header, which is what lets the CDE (and the
// experiments) observe the recency guarantees of Sections 5.7 and 6.
package ifsvr

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// VersionHeader carries the published document version (publish count) on
// HTTP responses.
const VersionHeader = "X-Interface-Version"

// DescriptorVersionHeader carries the interface-descriptor version the
// document was generated from — the monotone version the Section 6 recency
// guarantee is stated over.
const DescriptorVersionHeader = "X-Descriptor-Version"

// ErrNotFound reports a fetch of a never-published document.
var ErrNotFound = errors.New("ifsvr: document not published")

// Document is one published interface description.
type Document struct {
	// Content is the document text (WSDL, IDL, or stringified IOR).
	Content string
	// Version increments with each publication of this path.
	Version uint64
	// DescriptorVersion is the interface-descriptor version the document
	// was generated from (0 for unversioned documents such as IORs).
	DescriptorVersion uint64
	// ContentType is the MIME type served.
	ContentType string
}

// Server is the Interface Server. The zero value is usable as an in-memory
// store; call Start to also serve documents over HTTP.
type Server struct {
	mu   sync.RWMutex
	docs map[string]Document

	httpSrv  *http.Server
	listener net.Listener
	baseURL  string
	done     chan struct{}
}

// New returns an empty interface server.
func New() *Server {
	return &Server{docs: make(map[string]Document)}
}

// Publish stores content under path (e.g. "/wsdl/Mail") and returns the new
// version. Republishing the same path bumps the version even if the content
// is unchanged; the publisher avoids redundant publications itself.
func (s *Server) Publish(path, contentType, content string) uint64 {
	return s.PublishVersioned(path, contentType, content, 0)
}

// PublishVersioned is Publish carrying the interface-descriptor version the
// document was generated from.
func (s *Server) PublishVersioned(path, contentType, content string, descriptorVersion uint64) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.docs == nil {
		s.docs = make(map[string]Document)
	}
	d := s.docs[path]
	d.Content = content
	d.ContentType = contentType
	d.DescriptorVersion = descriptorVersion
	d.Version++
	s.docs[path] = d
	return d.Version
}

// Get returns the current document at path.
func (s *Server) Get(path string) (Document, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.docs[path]
	if !ok {
		return Document{}, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return d, nil
}

// Version returns the current version of path (0 if never published).
func (s *Server) Version(path string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.docs[path].Version
}

// Paths returns all published paths (unordered).
func (s *Server) Paths() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ps := make([]string, 0, len(s.docs))
	for p := range s.docs {
		ps = append(ps, p)
	}
	return ps
}

// ServeHTTP implements http.Handler: GET returns the document with its
// version header.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	d, err := s.Get(r.URL.Path)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", d.ContentType)
	w.Header().Set(VersionHeader, strconv.FormatUint(d.Version, 10))
	w.Header().Set(DescriptorVersionHeader, strconv.FormatUint(d.DescriptorVersion, 10))
	_, _ = io.WriteString(w, d.Content)
}

// Start begins serving over HTTP on addr ("127.0.0.1:0" for an ephemeral
// port) and returns the base URL, e.g. "http://127.0.0.1:41234".
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("ifsvr: listen %s: %w", addr, err)
	}
	s.listener = ln
	s.baseURL = "http://" + ln.Addr().String()
	s.httpSrv = &http.Server{Handler: s, ReadHeaderTimeout: 10 * time.Second}
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		_ = s.httpSrv.Serve(ln)
	}()
	return s.baseURL, nil
}

// BaseURL returns the server's base URL ("" before Start).
func (s *Server) BaseURL() string { return s.baseURL }

// Close stops the HTTP server (no-op if Start was never called).
func (s *Server) Close() error {
	if s.httpSrv == nil {
		return nil
	}
	err := s.httpSrv.Close()
	<-s.done
	return err
}

// Fetch is FetchContext with a background context.
func Fetch(client *http.Client, url string) (Document, error) {
	return FetchContext(context.Background(), client, url)
}

// FetchContext retrieves a document over HTTP — the client-side counterpart
// used by the CDE. Cancelling ctx aborts the round-trip.
func FetchContext(ctx context.Context, client *http.Client, url string) (Document, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return Document{}, fmt.Errorf("ifsvr: building request for %s: %w", url, err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return Document{}, fmt.Errorf("ifsvr: fetching %s: %w", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return Document{}, fmt.Errorf("ifsvr: fetching %s: HTTP %d", url, resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return Document{}, fmt.Errorf("ifsvr: reading %s: %w", url, err)
	}
	ver, _ := strconv.ParseUint(strings.TrimSpace(resp.Header.Get(VersionHeader)), 10, 64)
	dver, _ := strconv.ParseUint(strings.TrimSpace(resp.Header.Get(DescriptorVersionHeader)), 10, 64)
	return Document{
		Content:           string(data),
		Version:           ver,
		DescriptorVersion: dver,
		ContentType:       resp.Header.Get("Content-Type"),
	}, nil
}
