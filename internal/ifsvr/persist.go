package ifsvr

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Store persistence: a snapshot+WAL pair.
//
// The durable state of a store is a compacted snapshot (documents, retired
// versions, the epoch counter, the restart generation, and the bounded
// replay journal) plus a write-ahead log of every commit batch and
// retirement since that snapshot. Open loads the snapshot, replays the
// log's longest valid prefix on top, bumps the generation, and rewrites a
// fresh snapshot — so a restarted Interface Server resumes at an epoch
// strictly past its pre-restart epoch and still answers reconnecting
// watchers from the journal (event: replay) instead of forcing a snapshot
// stampede.

// SnapshotSchema identifies the snapshot file format.
const SnapshotSchema = "livedev/ifsvr-snapshot/v1"

// DefaultSnapshotEvery is how many commit batches are logged between
// compacted snapshots.
const DefaultSnapshotEvery = 64

// PersistentState is everything a store needs to resume where a previous
// incarnation left off.
type PersistentState struct {
	// Generation counts store incarnations over this state: the recovered
	// value belongs to the incarnation that wrote it, and Open bumps it.
	Generation uint64
	// Epoch is the last committed epoch.
	Epoch uint64
	// FloorEpoch is the replay-journal floor: the journal covers epochs in
	// (FloorEpoch, Epoch].
	FloorEpoch uint64
	// LSN is the log sequence number of the last logged operation this
	// state covers. Recovery skips WAL records at or below it, so replay
	// stays idempotent when a crash leaves already-snapshotted records in
	// the log.
	LSN uint64
	// Docs are the committed documents by path.
	Docs map[string]Document
	// Retired maps removed paths to their last committed version, so a
	// republication resumes the sequence.
	Retired map[string]uint64
	// Journal is the bounded replay journal, commit order.
	Journal []StoreEvent
}

// Persistence is the pluggable durability backend of a Store. The file
// implementation (StoreConfig.Dir) is the default; alternative backends
// (a KV store, object storage) implement the same operations. Calls are
// never concurrent — the store serializes them on its writer lock (the
// appends under the state lock too; the cadence Snapshot deliberately off
// it, so document readers never wait on snapshot IO) — but they do NOT
// all hold the state lock: implementations must not rely on it for their
// own synchronization, and must not call back into the store.
type Persistence interface {
	// Load recovers the persisted state: the last snapshot plus the longest
	// valid prefix of the write-ahead log. A backend with no prior state
	// returns a zero PersistentState and no error.
	Load() (PersistentState, error)
	// Append durably logs one committed batch, under the given log
	// sequence number, before watchers are notified.
	Append(lsn uint64, events []StoreEvent) error
	// AppendRemove durably logs a path retirement.
	AppendRemove(lsn uint64, path string, version uint64) error
	// Snapshot writes a compacted snapshot of the full state and resets the
	// log, so recovery cost stays bounded.
	Snapshot(state PersistentState) error
	// Close releases the backend's resources (after a final Snapshot).
	Close() error
}

// snapshotWire is the JSON layout of the snapshot file. Documents and
// journal entries use the same wire object as the SSE transport and the
// WAL, keyed by path.
type snapshotWire struct {
	Schema     string            `json:"schema"`
	Generation uint64            `json:"generation"`
	Epoch      uint64            `json:"epoch"`
	FloorEpoch uint64            `json:"floor_epoch"`
	Lsn        uint64            `json:"lsn"`
	Docs       []streamWire      `json:"docs"`
	Retired    map[string]uint64 `json:"retired,omitempty"`
	Journal    []streamWire      `json:"journal,omitempty"`
}

// filePersistence is the file-backed Persistence: <dir>/snapshot.json plus
// <dir>/wal.log. Snapshots are written to a temp file and renamed into
// place, so a crash mid-snapshot leaves the previous one intact.
type filePersistence struct {
	dir string
	wal *os.File
}

const (
	snapshotFile = "snapshot.json"
	walFile      = "wal.log"
)

// OpenFilePersistence opens (creating if needed) the snapshot+WAL pair
// under dir. It is what StoreConfig.Dir resolves to.
func OpenFilePersistence(dir string) (Persistence, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ifsvr: creating data dir: %w", err)
	}
	wal, err := os.OpenFile(filepath.Join(dir, walFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ifsvr: opening WAL: %w", err)
	}
	return &filePersistence{dir: dir, wal: wal}, nil
}

// Load implements Persistence: snapshot, then the WAL's longest valid
// prefix on top. The WAL file is truncated to that prefix so later appends
// extend valid data, never garbage.
func (p *filePersistence) Load() (PersistentState, error) {
	state := PersistentState{
		Docs:    make(map[string]Document),
		Retired: make(map[string]uint64),
	}
	data, err := os.ReadFile(filepath.Join(p.dir, snapshotFile))
	switch {
	case errors.Is(err, os.ErrNotExist):
		// First open of this directory.
	case err != nil:
		return PersistentState{}, fmt.Errorf("ifsvr: reading snapshot: %w", err)
	default:
		var snap snapshotWire
		if jerr := json.Unmarshal(data, &snap); jerr != nil {
			return PersistentState{}, fmt.Errorf("ifsvr: parsing snapshot: %w", jerr)
		}
		if snap.Schema != SnapshotSchema {
			return PersistentState{}, fmt.Errorf("ifsvr: snapshot schema %q, want %q", snap.Schema, SnapshotSchema)
		}
		state.Generation = snap.Generation
		state.Epoch = snap.Epoch
		state.FloorEpoch = snap.FloorEpoch
		state.LSN = snap.Lsn
		for _, w := range snap.Docs {
			state.Docs[w.Path] = Document{
				Content:           w.Content,
				ContentType:       w.ContentType,
				Version:           w.Version,
				DescriptorVersion: w.DescriptorVersion,
				Epoch:             w.Epoch,
			}
		}
		for path, v := range snap.Retired {
			state.Retired[path] = v
		}
		for _, w := range snap.Journal {
			doc := Document{
				Content:           w.Content,
				ContentType:       w.ContentType,
				Version:           w.Version,
				DescriptorVersion: w.DescriptorVersion,
				Epoch:             w.Epoch,
			}
			state.Journal = append(state.Journal, StoreEvent{Path: w.Path, Doc: doc, Payload: encodeEventPayload(w.Path, doc)})
		}
	}

	if _, err := p.wal.Seek(0, io.SeekStart); err != nil {
		return PersistentState{}, fmt.Errorf("ifsvr: seeking WAL: %w", err)
	}
	img, err := io.ReadAll(p.wal)
	if err != nil {
		return PersistentState{}, fmt.Errorf("ifsvr: reading WAL: %w", err)
	}
	recs, valid := scanWAL(img)
	for _, rec := range recs {
		switch rec.kind {
		case walKindCommit:
			lsn, evs, derr := decodeCommitPayload(rec.payload)
			if derr != nil || len(evs) == 0 {
				continue // CRC-valid but semantically bad; skip, keep scanning
			}
			if lsn <= state.LSN {
				// An operation the snapshot already covers (crash between
				// snapshot rename and WAL reset): replay is idempotent.
				continue
			}
			state.LSN = lsn
			for _, ev := range evs {
				state.Docs[ev.Path] = ev.Doc
				delete(state.Retired, ev.Path)
				if ev.Doc.Epoch > state.Epoch {
					state.Epoch = ev.Doc.Epoch
				}
			}
			state.Journal = append(state.Journal, evs...)
		case walKindRemove:
			var rm walRemove
			if json.Unmarshal(rec.payload, &rm) != nil {
				continue
			}
			if rm.Lsn <= state.LSN {
				continue // already covered by the snapshot
			}
			state.LSN = rm.Lsn
			delete(state.Docs, rm.Path)
			state.Retired[rm.Path] = rm.Version
		}
	}
	if valid < len(img) {
		// Torn or corrupt tail: keep the longest valid prefix.
		if err := p.wal.Truncate(int64(valid)); err != nil {
			return PersistentState{}, fmt.Errorf("ifsvr: truncating torn WAL tail: %w", err)
		}
	}
	if _, err := p.wal.Seek(int64(valid), io.SeekStart); err != nil {
		return PersistentState{}, fmt.Errorf("ifsvr: seeking WAL: %w", err)
	}
	return state, nil
}

// Append implements Persistence: one commit-batch record.
func (p *filePersistence) Append(lsn uint64, events []StoreEvent) error {
	_, err := p.wal.Write(encodeCommitRecord(lsn, events))
	return err
}

// AppendRemove implements Persistence: one retirement record.
func (p *filePersistence) AppendRemove(lsn uint64, path string, version uint64) error {
	_, err := p.wal.Write(encodeRemoveRecord(lsn, path, version))
	return err
}

// Snapshot implements Persistence: write-temp-and-rename, then reset the
// WAL. A crash between the rename and the reset leaves already-covered
// records in the log, which Load skips by lsn.
func (p *filePersistence) Snapshot(state PersistentState) error {
	snap := snapshotWire{
		Schema:     SnapshotSchema,
		Generation: state.Generation,
		Epoch:      state.Epoch,
		FloorEpoch: state.FloorEpoch,
		Lsn:        state.LSN,
		Retired:    state.Retired,
	}
	for path, d := range state.Docs {
		snap.Docs = append(snap.Docs, streamWire{
			Path:              path,
			Version:           d.Version,
			DescriptorVersion: d.DescriptorVersion,
			Epoch:             d.Epoch,
			ContentType:       d.ContentType,
			Content:           d.Content,
		})
	}
	for _, ev := range state.Journal {
		snap.Journal = append(snap.Journal, streamWire{
			Path:              ev.Path,
			Version:           ev.Doc.Version,
			DescriptorVersion: ev.Doc.DescriptorVersion,
			Epoch:             ev.Doc.Epoch,
			ContentType:       ev.Doc.ContentType,
			Content:           ev.Doc.Content,
		})
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("ifsvr: encoding snapshot: %w", err)
	}
	tmp, err := os.CreateTemp(p.dir, snapshotFile+".tmp*")
	if err != nil {
		return fmt.Errorf("ifsvr: creating snapshot temp: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("ifsvr: writing snapshot: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(p.dir, snapshotFile)); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("ifsvr: installing snapshot: %w", err)
	}
	if err := p.wal.Truncate(0); err != nil {
		return fmt.Errorf("ifsvr: resetting WAL: %w", err)
	}
	if _, err := p.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("ifsvr: seeking WAL: %w", err)
	}
	return nil
}

// Close implements Persistence.
func (p *filePersistence) Close() error { return p.wal.Close() }
