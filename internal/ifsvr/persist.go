package ifsvr

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Store persistence: sharded snapshot+WAL pairs.
//
// The durable state of a store is partitioned by path-hash into K shards,
// each a compacted snapshot (snapshot-NN.json) plus a write-ahead log
// (wal-NN.log) of the commit batches and retirements since that shard's
// snapshot. Shards carry independent log sequence numbers and compact
// independently, so a hot path rewrites 1/K of the state instead of all of
// it, and fsync pressure spreads across K files. Open loads every shard
// (and any leftover single-file or differently-sharded layout) in
// parallel, merges newest-wins, bumps the generation, and rewrites a
// fresh full snapshot — so a restarted Interface Server resumes at an
// epoch strictly past its pre-restart epoch and still answers
// reconnecting watchers from the journal (event: replay) instead of
// forcing a snapshot stampede.

// SnapshotSchema identifies the sharded snapshot file format.
const SnapshotSchema = "livedev/ifsvr-snapshot/v2"

// snapshotSchemaV1 is the pre-sharding single-file snapshot format; Load
// migrates it on first open.
const snapshotSchemaV1 = "livedev/ifsvr-snapshot/v1"

// DefaultSnapshotEvery is how many commit batches a shard logs between
// compacted snapshots of that shard.
const DefaultSnapshotEvery = 64

// DefaultShards is the WAL/snapshot shard count when FileConfig.Shards is 0.
const DefaultShards = 8

// DefaultGroupWindow is the group-commit gather window when
// FileConfig.GroupWindow is 0 under SyncGroupCommit.
const DefaultGroupWindow = 2 * time.Millisecond

// SyncPolicy selects what a committed publication's ack means for
// durability (see FileConfig.Sync).
type SyncPolicy int

const (
	// SyncNone acks after the WAL write hits the OS page cache (no fsync):
	// a process crash loses nothing, a power loss can lose the tail.
	SyncNone SyncPolicy = iota
	// SyncGroupCommit acks only after the record is fsynced, with one
	// dedicated writer per shard batching the records of concurrent
	// committers into a single fsync (classic group commit): the ack is
	// honest and the fsync cost is amortized across the group.
	SyncGroupCommit
	// SyncAlways acks only after an fsync issued by the committer itself,
	// one per logged batch — no coalescing, maximum ordering paranoia.
	SyncAlways
)

// String returns the flag spelling of the policy.
func (sp SyncPolicy) String() string {
	switch sp {
	case SyncNone:
		return "none"
	case SyncGroupCommit:
		return "group"
	case SyncAlways:
		return "always"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(sp))
}

// ParseSyncPolicy parses a -sync flag value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "none":
		return SyncNone, nil
	case "group", "group-commit", "groupcommit":
		return SyncGroupCommit, nil
	case "always", "full":
		return SyncAlways, nil
	}
	return SyncNone, fmt.Errorf("ifsvr: unknown sync policy %q (want none, group, or always)", s)
}

// PersistentState is everything a store needs to resume where a previous
// incarnation left off.
type PersistentState struct {
	// Generation counts store incarnations over this state: the recovered
	// value belongs to the incarnation that wrote it, and Open bumps it.
	Generation uint64
	// Epoch is the last committed epoch.
	Epoch uint64
	// FloorEpoch is the replay-journal floor: the journal covers epochs in
	// (FloorEpoch, Epoch].
	FloorEpoch uint64
	// Docs are the committed documents by path.
	Docs map[string]Document
	// Retired maps removed paths to their last committed version, so a
	// republication resumes the sequence.
	Retired map[string]uint64
	// Journal is the bounded replay journal, commit order.
	Journal []StoreEvent
}

// SyncToken identifies the durability horizon of one logged operation: the
// value Append returns and Sync blocks on. Tokens are opaque to the store
// and meaningful only to the backend that issued them; nil means nothing
// to wait for.
type SyncToken any

// PersistStats are the durability counters of a Persistence backend; all
// fields are cumulative since open.
type PersistStats struct {
	// Policy is the backend's sync policy ("none", "group", "always").
	Policy string
	// Shards is the WAL/snapshot shard count.
	Shards int
	// LastLSN is each shard's last appended log sequence number.
	LastLSN []uint64
	// DurableLSN is each shard's durability watermark: the last lsn known
	// to have survived an fsync (or be covered by a shard snapshot).
	DurableLSN []uint64
	// Fsyncs counts WAL File.Sync calls.
	Fsyncs uint64
	// SyncedBatches counts logged batches made durable by those fsyncs —
	// SyncedBatches/Fsyncs is the mean group-commit batch size.
	SyncedBatches uint64
	// SyncWaits counts commits that blocked waiting for an fsync, and
	// SyncWaitNanos their total wait — SyncWaitNanos/SyncWaits is the mean
	// fsync lag an acked commit paid.
	SyncWaits     uint64
	SyncWaitNanos uint64
	// Compactions counts snapshot passes that wrote at least one shard.
	Compactions uint64
	// MigratedSources counts foreign layouts absorbed at open: a legacy
	// single-file snapshot+WAL pair, or shard files from a different
	// shard count.
	MigratedSources int
}

// GroupCommitMean is the mean number of logged batches per fsync.
func (ps PersistStats) GroupCommitMean() float64 {
	if ps.Fsyncs == 0 {
		return 0
	}
	return float64(ps.SyncedBatches) / float64(ps.Fsyncs)
}

// SyncWaitMean is the mean time an acked commit spent waiting on fsync.
func (ps PersistStats) SyncWaitMean() time.Duration {
	if ps.SyncWaits == 0 {
		return 0
	}
	return time.Duration(ps.SyncWaitNanos / ps.SyncWaits)
}

// Persistence is the pluggable durability backend of a Store. The file
// implementation (StoreConfig.Dir) is the default; alternative backends
// (a KV store, object storage) implement the same operations. Load,
// Append, AppendRemove, Compact, Snapshot, and Close are never concurrent
// — the store serializes them on its writer lock (the appends under the
// state lock too; the cadence Compact deliberately off it, so document
// readers never wait on snapshot IO). Sync and Stats ARE concurrent: the
// store calls Sync after releasing its locks so concurrent committers can
// share one fsync. Implementations must not rely on the store's locks for
// their own synchronization, and must not call back into the store.
type Persistence interface {
	// Load recovers the persisted state: the last snapshots plus the
	// longest valid prefix of each write-ahead log. A backend with no
	// prior state returns a zero PersistentState and no error.
	Load() (PersistentState, error)
	// Append logs one committed batch before watchers are notified. The
	// returned token is what Sync blocks on; a nil token means the batch
	// needs no separate sync (policy none).
	Append(events []StoreEvent) (SyncToken, error)
	// AppendRemove logs a path retirement.
	AppendRemove(path string, version uint64) (SyncToken, error)
	// Sync blocks until the operation behind tok is durable under the
	// backend's sync policy. It is called without store locks held, so
	// concurrent committers can batch into one fsync.
	Sync(tok SyncToken) error
	// CompactDue reports whether any shard has logged enough batches to
	// warrant a cadence compaction.
	CompactDue() bool
	// Compact writes compacted snapshots for the shards that are due and
	// resets their logs, so recovery cost stays bounded.
	Compact(state PersistentState) error
	// Snapshot compacts the full state — every shard — and resets all
	// logs (the open/close path).
	Snapshot(state PersistentState) error
	// Stats returns the backend's durability counters.
	Stats() PersistStats
	// Close releases the backend's resources (after a final Snapshot).
	Close() error
}

// snapshotWire is the JSON layout of one shard's snapshot file. Documents
// and journal entries use the same wire object as the SSE transport and
// the WAL, keyed by path.
type snapshotWire struct {
	Schema     string `json:"schema"`
	Generation uint64 `json:"generation"`
	Epoch      uint64 `json:"epoch"`
	FloorEpoch uint64 `json:"floor_epoch"`
	// Shard/Shards locate this file in the sharded layout (absent in the
	// legacy v1 single-file format).
	Shard  int `json:"shard"`
	Shards int `json:"shards,omitempty"`
	// Lsn is the shard's last logged operation this snapshot covers.
	// Recovery skips WAL records at or below it, so replay stays
	// idempotent when a crash leaves already-snapshotted records in the
	// log.
	Lsn     uint64            `json:"lsn"`
	Docs    []streamWire      `json:"docs"`
	Retired map[string]uint64 `json:"retired,omitempty"`
	Journal []streamWire      `json:"journal,omitempty"`
}

const (
	legacySnapshotFile = "snapshot.json"
	legacyWALFile      = "wal.log"
)

// shardSnapshotFile / shardWALFile name shard i's files.
func shardSnapshotFile(i int) string { return fmt.Sprintf("snapshot-%02d.json", i) }
func shardWALFile(i int) string      { return fmt.Sprintf("wal-%02d.log", i) }

// shardOf maps a document path to its shard: FNV-1a over the path, mod K.
// The hash is stable across processes and releases — changing it would
// orphan records — which is why it is spelled out instead of delegated to
// a seed-randomized library hash.
func shardOf(path string, shards int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(path); i++ {
		h ^= uint64(path[i])
		h *= prime64
	}
	return int(h % uint64(shards))
}

// FileConfig configures the file persistence backend.
type FileConfig struct {
	// Dir is the data directory (created if needed).
	Dir string
	// Shards is the WAL/snapshot shard count (0 means DefaultShards).
	// Changing it on an existing directory reshards on the next open.
	Shards int
	// Sync selects the durability policy of the ack (default SyncNone).
	Sync SyncPolicy
	// GroupWindow bounds the extra time a lone commit may wait for
	// concurrent commits to join its fsync group under SyncGroupCommit
	// (0 means DefaultGroupWindow; groups that already formed behind an
	// in-flight fsync are synced immediately).
	GroupWindow time.Duration
	// SnapshotEvery is how many batches one shard logs between cadence
	// compactions of that shard (0 means DefaultSnapshotEvery).
	SnapshotEvery int
}

// walShard is one shard's WAL file plus its sequence and durability
// watermarks. The mutex guards every field; cond wakes only the shard's
// group-commit syncer ("new record appended" / "shutting down"), while
// Sync waiters each get their own channel so an fsync completion wakes
// exactly the commits it covered — a shared broadcast here would stampede
// every parked publisher on every round.
type walShard struct {
	idx  int
	name string

	mu      sync.Mutex
	cond    *sync.Cond
	f       *os.File
	started bool // current file contents begin with the shard-header record
	lsn     uint64
	durable uint64
	batches int   // records appended since this shard's last snapshot
	err     error // sticky append/fsync error; cleared by a successful snapshot
	closed  bool
	waiters []*syncWaiter
}

// syncWaiter is one parked Sync call: completed with nil once the shard's
// durable watermark reaches lsn, or with the shard's error.
type syncWaiter struct {
	lsn  uint64
	done chan error
}

// notifyLocked completes every Sync waiter the shard's current state can
// answer: durability covers its record (nil), or the shard hit a sticky
// error or closed. Called with sh.mu held; the channels are buffered so
// the sends cannot block.
func (sh *walShard) notifyLocked() {
	if sh.err == nil && !sh.closed {
		kept := sh.waiters[:0]
		for _, w := range sh.waiters {
			if w.lsn <= sh.durable {
				w.done <- nil
			} else {
				kept = append(kept, w)
			}
		}
		sh.waiters = kept
		return
	}
	fail := sh.err
	if fail == nil {
		fail = ErrStoreClosed
	}
	for _, w := range sh.waiters {
		if w.lsn <= sh.durable {
			w.done <- nil
		} else {
			w.done <- fail
		}
	}
	sh.waiters = nil
}

// filePersistence is the file-backed Persistence: K snapshot+WAL shard
// pairs under one directory. Snapshots are written to a temp file,
// fsynced, renamed into place, and the directory is fsynced — so a crash
// mid-snapshot leaves the previous one intact and a completed rename
// survives power loss.
type filePersistence struct {
	cfg    FileConfig
	shards []*walShard
	// stale are files superseded by the configured layout (the legacy
	// single-file pair, shard files from a different K); they are deleted
	// only after the next full snapshot has durably captured their
	// contents in the configured layout.
	stale    []string
	migrated int
	wg       sync.WaitGroup

	fsyncs        atomic.Uint64
	syncedBatches atomic.Uint64
	syncWaits     atomic.Uint64
	syncWaitNanos atomic.Uint64
	compactions   atomic.Uint64
}

// OpenFilePersistence opens (creating if needed) the sharded snapshot+WAL
// layout under cfg.Dir. It is what StoreConfig.Dir resolves to.
func OpenFilePersistence(cfg FileConfig) (Persistence, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = DefaultSnapshotEvery
	}
	if cfg.GroupWindow <= 0 {
		cfg.GroupWindow = DefaultGroupWindow
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("ifsvr: creating data dir: %w", err)
	}
	p := &filePersistence{cfg: cfg}
	for i := 0; i < cfg.Shards; i++ {
		f, err := os.OpenFile(filepath.Join(cfg.Dir, shardWALFile(i)), os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			for _, sh := range p.shards {
				_ = sh.f.Close()
			}
			return nil, fmt.Errorf("ifsvr: opening WAL shard %d: %w", i, err)
		}
		sh := &walShard{idx: i, name: shardWALFile(i), f: f}
		sh.cond = sync.NewCond(&sh.mu)
		p.shards = append(p.shards, sh)
	}
	if cfg.Sync == SyncGroupCommit {
		for _, sh := range p.shards {
			p.wg.Add(1)
			go p.groupSyncer(sh)
		}
	}
	return p, nil
}

// walSource is one on-disk snapshot+WAL pair recovery reads: a configured
// shard, a shard file left over from a different shard count, or the
// legacy single-file layout (shard == -1).
type walSource struct {
	shard    int
	snapName string
	walName  string
}

// sourceState is what one source recovered.
type sourceState struct {
	state   PersistentState
	lsn     uint64 // last applied log sequence number
	applied int    // WAL records applied on top of the snapshot
	err     error
}

// Load implements Persistence: every discoverable source — the configured
// shards plus any legacy or differently-sharded leftovers — is replayed
// concurrently (snapshot, then the WAL's longest valid prefix), and the
// results are merged newest-wins by epoch/version. One goroutine per
// source overlaps each shard's file reads with the others' JSON decoding,
// which is what makes recovery wall-time fall as the shard count rises.
// Foreign sources are remembered and deleted after the next full
// Snapshot rewrites their contents into the configured layout — the
// one-shot migration path for a PR 5 single-file directory or a changed
// shard count.
func (p *filePersistence) Load() (PersistentState, error) {
	sources, err := p.discoverSources()
	if err != nil {
		return PersistentState{}, err
	}
	results := make([]sourceState, len(sources))
	var wg sync.WaitGroup
	for i, src := range sources {
		wg.Add(1)
		go func(i int, src walSource) {
			defer wg.Done()
			results[i] = p.loadSource(src)
		}(i, src)
	}
	wg.Wait()
	for _, res := range results {
		if res.err != nil {
			return PersistentState{}, res.err
		}
	}

	merged := PersistentState{
		Docs:    make(map[string]Document),
		Retired: make(map[string]uint64),
	}
	for i, res := range results {
		st := res.state
		if st.Generation > merged.Generation {
			merged.Generation = st.Generation
		}
		if st.Epoch > merged.Epoch {
			merged.Epoch = st.Epoch
		}
		if st.FloorEpoch > merged.FloorEpoch {
			// The journal floor only ever advances, so the merged journal
			// is complete above the highest floor any source recorded.
			merged.FloorEpoch = st.FloorEpoch
		}
		for path, d := range st.Docs {
			if cur, ok := merged.Docs[path]; !ok || d.Epoch > cur.Epoch ||
				(d.Epoch == cur.Epoch && d.Version > cur.Version) {
				merged.Docs[path] = d
			}
		}
		for path, v := range st.Retired {
			if v > merged.Retired[path] {
				merged.Retired[path] = v
			}
		}
		// Seed the configured shards' sequences from their own source so
		// fresh appends extend, never collide with, records a crash may
		// have left behind the next snapshot's lsn watermark.
		src := sources[i]
		if src.shard >= 0 && src.shard < len(p.shards) {
			sh := p.shards[src.shard]
			sh.mu.Lock()
			sh.lsn = res.lsn
			sh.durable = res.lsn
			sh.batches = res.applied
			sh.mu.Unlock()
		}
	}
	// A path both committed and retired across sources: the doc wins only
	// if it outran the retirement (republication resumes and increments
	// the retired version, so a tie means the retirement is newer).
	for path, v := range merged.Retired {
		if d, ok := merged.Docs[path]; ok {
			if d.Version > v {
				delete(merged.Retired, path)
			} else {
				delete(merged.Docs, path)
			}
		}
	}
	merged.Journal = mergeJournals(results, merged.FloorEpoch)
	return merged, nil
}

// discoverSources lists the recovery sources under the data directory and
// records which files the configured layout supersedes.
func (p *filePersistence) discoverSources() ([]walSource, error) {
	entries, err := os.ReadDir(p.cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("ifsvr: listing data dir: %w", err)
	}
	k := len(p.shards)
	seen := make(map[int]bool)
	legacy := false
	for _, e := range entries {
		name := e.Name()
		switch {
		case name == legacySnapshotFile || name == legacyWALFile:
			legacy = true
		case strings.HasPrefix(name, "snapshot-") && strings.HasSuffix(name, ".json"):
			if i, perr := parseShardIndex(name, "snapshot-", ".json"); perr == nil {
				seen[i] = true
			}
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			if i, perr := parseShardIndex(name, "wal-", ".log"); perr == nil {
				seen[i] = true
			}
		}
	}
	for i := 0; i < k; i++ {
		seen[i] = true
	}
	idxs := make([]int, 0, len(seen))
	for i := range seen {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	var sources []walSource
	if legacy {
		sources = append(sources, walSource{shard: -1, snapName: legacySnapshotFile, walName: legacyWALFile})
		p.stale = append(p.stale, legacySnapshotFile, legacyWALFile)
		p.migrated++
	}
	for _, i := range idxs {
		sources = append(sources, walSource{shard: i, snapName: shardSnapshotFile(i), walName: shardWALFile(i)})
		if i >= k {
			p.stale = append(p.stale, shardSnapshotFile(i), shardWALFile(i))
			p.migrated++
		}
	}
	return sources, nil
}

// parseShardIndex extracts NN from prefix+NN+suffix.
func parseShardIndex(name, prefix, suffix string) (int, error) {
	var i int
	if len(name) < len(prefix)+len(suffix) ||
		!strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, fmt.Errorf("ifsvr: bad shard file name %q", name)
	}
	digits := name[len(prefix) : len(name)-len(suffix)]
	if _, err := fmt.Sscanf(digits, "%d", &i); err != nil || i < 0 {
		return 0, fmt.Errorf("ifsvr: bad shard file name %q", name)
	}
	return i, nil
}

// loadSource recovers one snapshot+WAL pair: the snapshot, then the WAL's
// longest valid prefix on top, skipping records the snapshot's lsn
// watermark already covers. A configured shard's WAL handle is truncated
// to the valid prefix so later appends extend valid data, never garbage.
func (p *filePersistence) loadSource(src walSource) sourceState {
	res := sourceState{state: PersistentState{
		Docs:    make(map[string]Document),
		Retired: make(map[string]uint64),
	}}
	state := &res.state
	data, err := os.ReadFile(filepath.Join(p.cfg.Dir, src.snapName))
	switch {
	case errors.Is(err, os.ErrNotExist):
		// No snapshot yet (first open, or a WAL-only crash window).
	case err != nil:
		res.err = fmt.Errorf("ifsvr: reading %s: %w", src.snapName, err)
		return res
	default:
		var snap snapshotWire
		if jerr := json.Unmarshal(data, &snap); jerr != nil {
			res.err = fmt.Errorf("ifsvr: parsing %s: %w", src.snapName, jerr)
			return res
		}
		if snap.Schema != SnapshotSchema && snap.Schema != snapshotSchemaV1 {
			res.err = fmt.Errorf("ifsvr: %s schema %q, want %q", src.snapName, snap.Schema, SnapshotSchema)
			return res
		}
		state.Generation = snap.Generation
		state.Epoch = snap.Epoch
		state.FloorEpoch = snap.FloorEpoch
		res.lsn = snap.Lsn
		for _, w := range snap.Docs {
			state.Docs[w.Path] = wireDocument(w)
		}
		for path, v := range snap.Retired {
			state.Retired[path] = v
		}
		for _, w := range snap.Journal {
			doc := wireDocument(w)
			state.Journal = append(state.Journal, StoreEvent{Path: w.Path, Doc: doc, Payload: encodeEventPayload(w.Path, doc)})
		}
	}

	var sh *walShard
	if src.shard >= 0 && src.shard < len(p.shards) {
		sh = p.shards[src.shard]
	}
	var img []byte
	if sh != nil {
		if _, err := sh.f.Seek(0, io.SeekStart); err != nil {
			res.err = fmt.Errorf("ifsvr: seeking %s: %w", src.walName, err)
			return res
		}
		img, err = io.ReadAll(sh.f)
	} else {
		img, err = os.ReadFile(filepath.Join(p.cfg.Dir, src.walName))
		if errors.Is(err, os.ErrNotExist) {
			return res
		}
	}
	if err != nil {
		res.err = fmt.Errorf("ifsvr: reading %s: %w", src.walName, err)
		return res
	}
	recs, valid := scanWAL(img)
	snapLSN := res.lsn
	for _, rec := range recs {
		switch rec.kind {
		case walKindShard:
			// The shard-header record: framing metadata, no state.
		case walKindCommit:
			lsn, evs, derr := decodeCommitPayload(rec.payload)
			if derr != nil || len(evs) == 0 {
				continue // CRC-valid but semantically bad; skip, keep scanning
			}
			if lsn <= snapLSN {
				// An operation the snapshot already covers (crash between
				// snapshot rename and WAL reset): replay is idempotent.
				continue
			}
			res.lsn = lsn
			res.applied++
			for _, ev := range evs {
				state.Docs[ev.Path] = ev.Doc
				delete(state.Retired, ev.Path)
				if ev.Doc.Epoch > state.Epoch {
					state.Epoch = ev.Doc.Epoch
				}
			}
			state.Journal = append(state.Journal, evs...)
		case walKindRemove:
			var rm walRemove
			if json.Unmarshal(rec.payload, &rm) != nil {
				continue
			}
			if rm.Lsn <= snapLSN {
				continue // already covered by the snapshot
			}
			res.lsn = rm.Lsn
			res.applied++
			delete(state.Docs, rm.Path)
			state.Retired[rm.Path] = rm.Version
		}
	}
	if sh != nil {
		if valid < len(img) {
			// Torn or corrupt tail: keep the longest valid prefix.
			if err := sh.f.Truncate(int64(valid)); err != nil {
				res.err = fmt.Errorf("ifsvr: truncating torn tail of %s: %w", src.walName, err)
				return res
			}
		}
		if _, err := sh.f.Seek(int64(valid), io.SeekStart); err != nil {
			res.err = fmt.Errorf("ifsvr: seeking %s: %w", src.walName, err)
			return res
		}
		sh.mu.Lock()
		sh.started = valid > 0
		sh.mu.Unlock()
	}
	return res
}

// wireDocument converts a snapshot/WAL wire object back into a Document.
func wireDocument(w streamWire) Document {
	return Document{
		Content:           w.Content,
		ContentType:       w.ContentType,
		Version:           w.Version,
		DescriptorVersion: w.DescriptorVersion,
		Epoch:             w.Epoch,
	}
}

// mergeJournals unions the sources' replay journals into one epoch-ordered
// journal above the merged floor, deduplicating entries two layouts both
// recorded during an interrupted migration.
func mergeJournals(results []sourceState, floor uint64) []StoreEvent {
	type key struct {
		path  string
		epoch uint64
	}
	seen := make(map[key]bool)
	var out []StoreEvent
	for _, res := range results {
		for _, ev := range res.state.Journal {
			if ev.Doc.Epoch <= floor {
				continue
			}
			k := key{ev.Path, ev.Doc.Epoch}
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, ev)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Doc.Epoch != out[j].Doc.Epoch {
			return out[i].Doc.Epoch < out[j].Doc.Epoch
		}
		return out[i].Path < out[j].Path
	})
	return out
}

// walMark is one shard's durability target inside a fileSyncToken.
type walMark struct {
	shard int
	lsn   uint64
}

// fileSyncToken is the SyncToken of the file backend: the per-shard lsns
// one logged operation must see durable before its ack.
type fileSyncToken []walMark

// Append implements Persistence: the batch's events are partitioned by
// path-hash and logged to each touched shard under that shard's next lsn.
// The write is buffered (page cache); durability is the syncer's job, and
// the returned token names every touched shard so the ack waits for all
// of them.
func (p *filePersistence) Append(events []StoreEvent) (SyncToken, error) {
	k := len(p.shards)
	if k == 1 || len(events) == 1 {
		idx := 0
		if k > 1 {
			idx = shardOf(events[0].Path, k)
		}
		return p.appendShard(idx, func(lsn uint64) []byte {
			return encodeCommitRecord(lsn, events)
		})
	}
	groups := make(map[int][]StoreEvent)
	order := make([]int, 0, 2)
	for _, ev := range events {
		idx := shardOf(ev.Path, k)
		if _, ok := groups[idx]; !ok {
			order = append(order, idx)
		}
		groups[idx] = append(groups[idx], ev)
	}
	var tok fileSyncToken
	for _, idx := range order {
		evs := groups[idx]
		t, err := p.appendShard(idx, func(lsn uint64) []byte {
			return encodeCommitRecord(lsn, evs)
		})
		if err != nil {
			return tok, err
		}
		tok = append(tok, t.(fileSyncToken)...)
	}
	return tok, nil
}

// AppendRemove implements Persistence: one retirement record on the
// path's shard.
func (p *filePersistence) AppendRemove(path string, version uint64) (SyncToken, error) {
	return p.appendShard(shardOf(path, len(p.shards)), func(lsn uint64) []byte {
		return encodeRemoveRecord(lsn, path, version)
	})
}

// appendShard logs one record on shard idx, lazily writing the
// shard-header record when the file is empty. A write error is sticky:
// recovery stops at the first bad record, so appending past a torn one
// would only log bytes replay can never reach. A later successful
// snapshot of the shard resets the file and clears the error.
func (p *filePersistence) appendShard(idx int, enc func(lsn uint64) []byte) (SyncToken, error) {
	sh := p.shards[idx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return nil, ErrStoreClosed
	}
	if sh.err != nil {
		return nil, sh.err
	}
	if !sh.started {
		if _, err := sh.f.Write(encodeShardHeaderRecord(idx, len(p.shards))); err != nil {
			sh.err = err
			return nil, err
		}
		sh.started = true
	}
	lsn := sh.lsn + 1
	if _, err := sh.f.Write(enc(lsn)); err != nil {
		sh.err = err
		sh.cond.Broadcast()
		sh.notifyLocked()
		return nil, err
	}
	sh.lsn = lsn
	sh.batches++
	switch p.cfg.Sync {
	case SyncAlways:
		// The committer pays its own fsync, inline, before the ack.
		if err := walSync(sh.f); err != nil {
			sh.err = err
			sh.cond.Broadcast()
			sh.notifyLocked()
			return nil, err
		}
		sh.durable = lsn
		p.fsyncs.Add(1)
		p.syncedBatches.Add(1)
		sh.notifyLocked()
	case SyncGroupCommit:
		sh.cond.Broadcast() // hand the record to the shard's writer
	}
	return fileSyncToken{{shard: idx, lsn: lsn}}, nil
}

// groupSyncer is shard sh's dedicated WAL writer under SyncGroupCommit:
// it fsyncs whenever records are waiting, and every record appended while
// one fsync is in flight rides the next one — piggyback batching, the
// classic group commit. Crucially it never waits for a group to finish
// forming: the in-flight fsync IS the gather window, so on a sustained
// storm the committers acked by one fsync append their next records
// while the following fsync runs, and commit CPU overlaps disk time
// instead of alternating with it. Only a lone record waits: one yield
// (letting already-runnable committers join) plus, if it is still alone,
// a fraction of GroupWindow — one bounded chance for an imminent
// concurrent commit to share the fsync. (A deliberate full-window pause
// before each storm flush was tried and measured slower here: the
// closed-loop committers exhaust their in-flight commits within the
// window and the pause becomes idle time.)
func (p *filePersistence) groupSyncer(sh *walShard) {
	defer p.wg.Done()
	gatherTick := p.cfg.GroupWindow / 8
	for {
		sh.mu.Lock()
		for !sh.closed && (sh.err != nil || sh.durable >= sh.lsn) {
			sh.cond.Wait()
		}
		if sh.closed {
			sh.mu.Unlock()
			return
		}
		target := sh.lsn
		pending := target - sh.durable
		sh.mu.Unlock()

		if pending == 1 {
			runtime.Gosched()
			sh.mu.Lock()
			if sh.closed {
				sh.mu.Unlock()
				return
			}
			if sh.err == nil && sh.lsn > target {
				target = sh.lsn
				pending = target - sh.durable
			}
			sh.mu.Unlock()
		}
		if pending == 1 && gatherTick > 0 {
			time.Sleep(gatherTick)
			sh.mu.Lock()
			if sh.closed {
				sh.mu.Unlock()
				return
			}
			if sh.err == nil && sh.lsn > target {
				target = sh.lsn
			}
			sh.mu.Unlock()
		}

		err := walSync(sh.f)

		sh.mu.Lock()
		if err != nil {
			sh.err = err
		} else if target > sh.durable {
			p.fsyncs.Add(1)
			p.syncedBatches.Add(target - sh.durable)
			sh.durable = target
		}
		sh.notifyLocked()
		sh.mu.Unlock()
	}
}

// Sync implements Persistence: block until every shard the token touches
// has made its record durable. Under SyncNone (or for operations that
// logged nothing) there is nothing to wait for; under SyncAlways the
// append already synced and the wait is free; under SyncGroupCommit this
// is where concurrent committers queue behind the shard writer's next
// fsync.
func (p *filePersistence) Sync(tok SyncToken) error {
	marks, ok := tok.(fileSyncToken)
	if !ok || len(marks) == 0 || p.cfg.Sync == SyncNone {
		return nil
	}
	var start time.Time
	var firstErr error
	for _, m := range marks {
		sh := p.shards[m.shard]
		sh.mu.Lock()
		if sh.durable >= m.lsn {
			sh.mu.Unlock()
			continue
		}
		if sh.err != nil || sh.closed {
			err := sh.err
			if err == nil {
				err = ErrStoreClosed
			}
			sh.mu.Unlock()
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		w := &syncWaiter{lsn: m.lsn, done: make(chan error, 1)}
		sh.waiters = append(sh.waiters, w)
		sh.mu.Unlock()
		if start.IsZero() {
			start = time.Now()
		}
		if err := <-w.done; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if !start.IsZero() {
		p.syncWaits.Add(1)
		p.syncWaitNanos.Add(uint64(time.Since(start)))
	}
	return firstErr
}

// CompactDue implements Persistence: true when any shard has logged
// SnapshotEvery batches since its last snapshot.
func (p *filePersistence) CompactDue() bool {
	for _, sh := range p.shards {
		sh.mu.Lock()
		due := sh.batches >= p.cfg.SnapshotEvery
		sh.mu.Unlock()
		if due {
			return true
		}
	}
	return false
}

// Compact implements Persistence: snapshot only the shards whose batch
// count is due, so one hot path rewrites 1/K of the state instead of
// forcing a whole-log compaction.
func (p *filePersistence) Compact(state PersistentState) error {
	return p.writeSnapshots(state, false)
}

// Snapshot implements Persistence: compact every shard (the open/close
// path), then delete any files a foreign layout left behind — their
// contents are now durably captured in the configured layout.
func (p *filePersistence) Snapshot(state PersistentState) error {
	return p.writeSnapshots(state, true)
}

// writeSnapshots splits state by path-hash and writes the selected shards'
// snapshot files concurrently, each temp+fsync+rename+dir-fsync, then
// resets their WALs.
func (p *filePersistence) writeSnapshots(state PersistentState, full bool) error {
	k := len(p.shards)
	wires := make([]snapshotWire, k)
	for i := range wires {
		wires[i] = snapshotWire{
			Schema:     SnapshotSchema,
			Generation: state.Generation,
			Epoch:      state.Epoch,
			FloorEpoch: state.FloorEpoch,
			Shard:      i,
			Shards:     k,
		}
	}
	for path, d := range state.Docs {
		i := shardOf(path, k)
		wires[i].Docs = append(wires[i].Docs, docWire(path, d))
	}
	for path, v := range state.Retired {
		i := shardOf(path, k)
		if wires[i].Retired == nil {
			wires[i].Retired = make(map[string]uint64)
		}
		wires[i].Retired[path] = v
	}
	for _, ev := range state.Journal {
		i := shardOf(ev.Path, k)
		wires[i].Journal = append(wires[i].Journal, docWire(ev.Path, ev.Doc))
	}

	var wrote bool
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i, sh := range p.shards {
		if !full {
			sh.mu.Lock()
			due := sh.batches >= p.cfg.SnapshotEvery
			sh.mu.Unlock()
			if !due {
				continue
			}
		}
		wrote = true
		wg.Add(1)
		go func(i int, sh *walShard) {
			defer wg.Done()
			errs[i] = p.writeShardSnapshot(sh, wires[i])
		}(i, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if wrote {
		p.compactions.Add(1)
	}
	if full && len(p.stale) > 0 {
		// Every byte of the foreign layout now lives in the configured
		// shards' durable snapshots; dropping the leftovers ends the
		// migration. An earlier crash just reruns the newest-wins merge.
		for _, name := range p.stale {
			if err := os.Remove(filepath.Join(p.cfg.Dir, name)); err != nil && !errors.Is(err, os.ErrNotExist) {
				return fmt.Errorf("ifsvr: removing migrated %s: %w", name, err)
			}
		}
		p.stale = nil
		if err := syncDir(p.cfg.Dir); err != nil {
			return err
		}
	}
	return nil
}

// docWire renders one document as the shared wire object.
func docWire(path string, d Document) streamWire {
	return streamWire{
		Path:              path,
		Version:           d.Version,
		DescriptorVersion: d.DescriptorVersion,
		Epoch:             d.Epoch,
		ContentType:       d.ContentType,
		Content:           d.Content,
	}
}

// writeShardSnapshot installs one shard's snapshot (temp, fsync, rename,
// dir fsync) and resets its WAL. The snapshot records the shard's current
// lsn, so a crash between the rename and the WAL reset leaves records
// recovery skips by watermark. The write happens outside the shard lock —
// appends are excluded by the store's writer lock, not this one — so Sync
// waiters on other shards are never blocked behind snapshot IO here.
func (p *filePersistence) writeShardSnapshot(sh *walShard, wire snapshotWire) error {
	sh.mu.Lock()
	wire.Lsn = sh.lsn
	sh.mu.Unlock()
	data, err := json.Marshal(wire)
	if err != nil {
		return fmt.Errorf("ifsvr: encoding snapshot shard %d: %w", sh.idx, err)
	}
	snapName := shardSnapshotFile(sh.idx)
	tmp, err := os.CreateTemp(p.cfg.Dir, snapName+".tmp*")
	if err != nil {
		return fmt.Errorf("ifsvr: creating snapshot temp: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("ifsvr: writing snapshot shard %d: %w", sh.idx, err)
	}
	if err := os.Rename(tmpName, filepath.Join(p.cfg.Dir, snapName)); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("ifsvr: installing snapshot shard %d: %w", sh.idx, err)
	}
	// The rename itself must survive power loss, not just the temp file's
	// contents: fsync the directory.
	if err := syncDir(p.cfg.Dir); err != nil {
		return err
	}
	if err := sh.f.Truncate(0); err != nil {
		return fmt.Errorf("ifsvr: resetting WAL shard %d: %w", sh.idx, err)
	}
	if _, err := sh.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("ifsvr: seeking WAL shard %d: %w", sh.idx, err)
	}
	sh.mu.Lock()
	sh.started = false
	sh.batches = 0
	if sh.lsn > sh.durable {
		sh.durable = sh.lsn // the snapshot made every logged record durable
	}
	sh.err = nil // a reset log is appendable again
	sh.notifyLocked()
	sh.mu.Unlock()
	return nil
}

// syncDir fsyncs a directory so renames and removals inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("ifsvr: opening dir for fsync: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("ifsvr: fsyncing dir: %w", err)
	}
	return nil
}

// Stats implements Persistence.
func (p *filePersistence) Stats() PersistStats {
	ps := PersistStats{
		Policy:          p.cfg.Sync.String(),
		Shards:          len(p.shards),
		LastLSN:         make([]uint64, len(p.shards)),
		DurableLSN:      make([]uint64, len(p.shards)),
		Fsyncs:          p.fsyncs.Load(),
		SyncedBatches:   p.syncedBatches.Load(),
		SyncWaits:       p.syncWaits.Load(),
		SyncWaitNanos:   p.syncWaitNanos.Load(),
		Compactions:     p.compactions.Load(),
		MigratedSources: p.migrated,
	}
	for i, sh := range p.shards {
		sh.mu.Lock()
		ps.LastLSN[i] = sh.lsn
		ps.DurableLSN[i] = sh.durable
		sh.mu.Unlock()
	}
	return ps
}

// Close implements Persistence: stop the shard writers, wake any waiters,
// and close the WAL handles.
func (p *filePersistence) Close() error {
	for _, sh := range p.shards {
		sh.mu.Lock()
		sh.closed = true
		sh.cond.Broadcast()
		sh.notifyLocked()
		sh.mu.Unlock()
	}
	p.wg.Wait()
	var firstErr error
	for _, sh := range p.shards {
		if err := sh.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
