package ifsvr

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"
)

// The backpressure torture suite: one misbehaving stream client must cost
// exactly one connection — never the commit path, never the other
// watchers. These tests run race-enabled in CI.

// startBackpressureServer builds a store + view with the given valve
// settings applied before the listener starts.
func startBackpressureServer(t *testing.T, tune func(*Server)) (*Store, string) {
	t.Helper()
	st := NewStore(0, nil)
	srv := NewView(st)
	if tune != nil {
		tune(srv)
	}
	base, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		st.Close()
		_ = srv.Close()
	})
	return st, base
}

// dialRawStream opens a raw SSE request and returns the connection
// without ever reading the response: the caller decides whether to stall
// completely or trickle-read. The shrunken receive buffer keeps the
// kernel from absorbing the whole storm on the client side.
func dialRawStream(t *testing.T, base, path string) net.Conn {
	t.Helper()
	u, err := url.Parse(base)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", u.Host)
	if err != nil {
		t.Fatal(err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(4096)
	}
	req := fmt.Sprintf("GET %s?watch=stream&after=0 HTTP/1.1\r\nHost: %s\r\nAccept: text/event-stream\r\n\r\n", path, u.Host)
	if _, err := conn.Write([]byte(req)); err != nil {
		_ = conn.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return conn
}

// paddedContent renders a version's document body at roughly size bytes,
// so the storm moves real payload through the sockets.
func paddedContent(v uint64, size int) string {
	head := fmt.Sprintf("<v%d>", v)
	tail := fmt.Sprintf("</v%d>", v)
	if size <= len(head)+len(tail) {
		return fmt.Sprintf("<v%d/>", v)
	}
	return head + strings.Repeat("x", size-len(head)-len(tail)) + tail
}

// eventDigest compresses one observed event to a comparable fingerprint
// (the contents are kilobytes; a map of full payloads per watcher per
// epoch would dominate the test's memory).
func eventDigest(version, dv, epoch uint64, ctype, content string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(ctype))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(content))
	return fmt.Sprintf("v%d|dv%d|e%d|%d|%x", version, dv, epoch, len(content), h.Sum64())
}

// TestStreamStalledWatcherEvictedOthersUnaffected is the stalled-client
// torture: N healthy watchers hold streams while one raw connection
// completes the SSE request and never reads a byte. The publish storm
// must (a) evict the stalled stream via the write deadline — counted in
// Fanout.Evictions, because the client is still connected when its write
// misses the budget — and (b) leave every healthy watcher untouched:
// each observes every committed epoch exactly once, byte-identical to
// the committed content. Under the old push-per-commit fan-out the
// stalled socket would have pinned the shared delivery goroutine and
// starved all N.
func TestStreamStalledWatcherEvictedOthersUnaffected(t *testing.T) {
	watchers := 25
	if testing.Short() {
		watchers = 8
	}
	const payload = 8 << 10
	st, base := startBackpressureServer(t, func(srv *Server) {
		srv.HeartbeatInterval = 100 * time.Millisecond
		srv.StreamWriteTimeout = 300 * time.Millisecond
	})
	// The journal must retain the whole storm: with no journal eviction, a
	// missing epoch in a healthy watcher's record is a real delivery miss,
	// not a legitimate snapshot reset.
	st.SetHistoryLen(4096)
	const path = "/wsdl/S.wsdl"
	streamURL := base + path
	st.PublishVersioned(path, "text/xml", paddedContent(1, payload), 1)

	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = watchers + 4
	hc := &http.Client{Transport: tr}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup

	type obs struct {
		mu     sync.Mutex
		events map[uint64]string
	}
	all := make([]obs, watchers)
	for w := 0; w < watchers; w++ {
		all[w].events = make(map[uint64]string)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ctx.Err() == nil {
				_ = WatchStream(ctx, hc, streamURL, 0, func(ev StreamEvent) {
					key := eventDigest(ev.Doc.Version, ev.Doc.DescriptorVersion, ev.Doc.Epoch, ev.Doc.ContentType, ev.Doc.Content)
					all[w].mu.Lock()
					if prev, dup := all[w].events[ev.Doc.Epoch]; dup && prev != key {
						t.Errorf("watcher %d: epoch %d delivered twice with different payloads:\n%s\n%s", w, ev.Doc.Epoch, prev, key)
					}
					all[w].events[ev.Doc.Epoch] = key
					all[w].mu.Unlock()
				})
			}
		}(w)
	}

	waitEpoch := func(epoch uint64, patience time.Duration) {
		t.Helper()
		deadline := time.Now().Add(patience)
		for w := 0; w < watchers; w++ {
			for {
				all[w].mu.Lock()
				_, ok := all[w].events[epoch]
				all[w].mu.Unlock()
				if ok {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("watcher %d never observed epoch %d", w, epoch)
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
	// Every healthy watcher is attached (saw the seed) before the stall.
	waitEpoch(1, 30*time.Second)

	stalled := dialRawStream(t, base, path)
	// Let the server accept the stalled stream before the storm.
	time.Sleep(100 * time.Millisecond)

	// The storm: publish until the write deadline evicts the stalled
	// stream. The cap exists because the kernel absorbs the first few MB
	// in socket buffers before the pump's write ever blocks.
	const maxEdits = 3000
	version := uint64(1)
	deadline := time.Now().Add(90 * time.Second)
	for st.Stats().Fanout.Evictions == 0 {
		if version-1 >= maxEdits || time.Now().After(deadline) {
			t.Fatalf("stalled stream never evicted (%d edits, evictions=%d)", version-1, st.Stats().Fanout.Evictions)
		}
		version++
		st.PublishVersioned(path, "text/xml", paddedContent(version, payload), version)
		time.Sleep(time.Millisecond)
	}

	// The eviction closed the stalled connection: draining it at full
	// speed (receive buffer re-expanded so the kernel-absorbed backlog
	// clears quickly) must hit EOF or a reset, not an open stream.
	if tc, ok := stalled.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(4 << 20)
	}
	_ = stalled.SetReadDeadline(time.Now().Add(30 * time.Second))
	drain := make([]byte, 64<<10)
	for {
		_, err := stalled.Read(drain)
		if err == nil {
			continue
		}
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			t.Fatal("stalled connection still open 30s after the eviction was counted")
		}
		break
	}

	// One marker edit after the eviction, then full convergence.
	version++
	st.PublishVersioned(path, "text/xml", paddedContent(version, payload), version)
	waitEpoch(version, 60*time.Second)
	cancel()
	wg.Wait()

	// Zero miss, zero dup, byte-identical: every healthy watcher observed
	// every epoch (the journal retained them all, so a gap is a lost
	// delivery), and each observation matches the committed content.
	for epoch := uint64(1); epoch <= version; epoch++ {
		want := eventDigest(epoch, epoch, epoch, "text/xml", paddedContent(epoch, payload))
		for w := 0; w < watchers; w++ {
			all[w].mu.Lock()
			got, ok := all[w].events[epoch]
			all[w].mu.Unlock()
			if !ok {
				t.Fatalf("watcher %d missed epoch %d (stall leaked into a healthy stream)", w, epoch)
			}
			if got != want {
				t.Fatalf("watcher %d epoch %d observed %s, want %s", w, epoch, got, want)
			}
		}
	}
}

// TestStreamMaxWatcherLagEvictsLaggard exercises the lag valve in
// isolation: the write deadline is disabled, so the pump simply blocks
// while its client reads nothing and the whole storm piles up behind the
// cursor. When the client comes back (reading at full speed — every
// socket write now completes, so the deadline valve could never have
// fired even if armed), the pump's first collect sees a backlog far past
// MaxWatcherLag and must end the stream with the terminal "eviction"
// event rather than replaying the gap.
func TestStreamMaxWatcherLagEvictsLaggard(t *testing.T) {
	const payload = 32 << 10
	st, base := startBackpressureServer(t, func(srv *Server) {
		srv.HeartbeatInterval = time.Second
		srv.StreamWriteTimeout = -1 // disabled: this test is about the lag valve
		srv.MaxWatcherLag = 4
	})
	// The journal must cover the whole backlog: a cursor below the floor
	// would take the snapshot-reset path, not the lag eviction.
	st.SetHistoryLen(8192)
	const path = "/wsdl/S.wsdl"
	st.PublishVersioned(path, "text/xml", paddedContent(1, payload), 1)

	conn := dialRawStream(t, base, path)
	// Let the server accept the stream before the storm.
	time.Sleep(100 * time.Millisecond)

	// The storm lands while the client reads nothing: the pump fills the
	// socket buffers, blocks, and the rest of the storm accumulates as
	// journal backlog behind its cursor (12.8MB of payload — far past any
	// autotuned kernel buffer, so the pump is guaranteed to be parked with
	// a backlog much larger than the budget).
	version := uint64(1)
	for i := 0; i < 400; i++ {
		version++
		st.PublishVersioned(path, "text/xml", paddedContent(version, payload), version)
		time.Sleep(time.Millisecond)
	}

	// The client comes back at full speed — receive buffer re-expanded so
	// the megabytes the kernel absorbed before the pump blocked drain in
	// moments instead of trickling through the shrunken window. The
	// blocked write completes, the next collect sees the backlog, and the
	// terminal eviction event must arrive before the server hangs up.
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(4 << 20)
	}
	buf := make([]byte, 64<<10)
	var tail []byte
	deadline := time.Now().Add(60 * time.Second)
	sawEviction := false
	for {
		_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		n, err := conn.Read(buf)
		if n > 0 {
			tail = append(tail, buf[:n]...)
			if bytes.Contains(tail, []byte("event: eviction")) {
				sawEviction = true
			}
			if keep := 64 << 10; len(tail) > keep {
				tail = tail[len(tail)-keep:]
			}
		}
		if err != nil {
			if sawEviction {
				break // terminal event, then the server hung up — as specified
			}
			t.Fatalf("stream ended without the terminal eviction event: %v (evictions=%d)", err, st.Stats().Fanout.Evictions)
		}
		if time.Now().After(deadline) {
			t.Fatalf("laggard never evicted (evictions=%d)", st.Stats().Fanout.Evictions)
		}
	}
	if got := st.Stats().Fanout.Evictions; got == 0 {
		t.Fatal("terminal eviction event seen but Fanout.Evictions = 0")
	}
}
