//go:build !linux

package ifsvr

import "os"

// walSync falls back to fsync where fdatasync(2) is unavailable; durability
// is the same, each flush just pays the extra metadata journal commit.
func walSync(f *os.File) error { return f.Sync() }
