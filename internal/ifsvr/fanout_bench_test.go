package ifsvr

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// benchStreamFanout measures the allocation cost of fanning one committed
// edit out to N held streaming watchers. B/op divided by N is the
// per-watcher marshaling cost — the number the commit-time shared payload
// (marshal once per commit, fan the same bytes to every connection) is
// meant to drive down versus the old marshal-per-connection emit path.
func benchStreamFanout(b *testing.B, watchers int) {
	st := NewStore(0, nil)
	srv := NewView(st)
	base, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		st.Close()
		_ = srv.Close()
	}()
	const path = "/wsdl/Fanout.wsdl"
	url := base + path
	st.PublishVersioned(path, "text/xml", "<v1/>", 1)

	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = watchers + 4
	hc := &http.Client{Transport: tr}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	defer func() {
		cancel()
		wg.Wait()
	}()

	seen := make([]atomic.Uint64, watchers)
	for w := 0; w < watchers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ctx.Err() == nil {
				_ = WatchStream(ctx, hc, url, 0, func(ev StreamEvent) {
					if ev.Doc.Version > seen[w].Load() {
						seen[w].Store(ev.Doc.Version)
					}
				})
			}
		}(w)
	}
	waitAll := func(version uint64) {
		deadline := time.Now().Add(60 * time.Second)
		for {
			all := true
			for w := range seen {
				if seen[w].Load() < version {
					all = false
					break
				}
			}
			if all {
				return
			}
			if time.Now().After(deadline) {
				b.Fatalf("watchers did not converge on version %d", version)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	waitAll(1)

	version := uint64(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		version++
		st.PublishVersioned(path, "text/xml", fmt.Sprintf("<v%d/>", version), version)
		waitAll(version)
	}
}

func BenchmarkStreamFanout100(b *testing.B)  { benchStreamFanout(b, 100) }
func BenchmarkStreamFanout1000(b *testing.B) { benchStreamFanout(b, 1000) }
