package livedev_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"livedev"
)

// TestFacadeEndToEnd exercises the public API surface the README's
// quickstart shows: class definition, manager registration, SOAP and CORBA
// service, live edits, and stale-call recovery — all through the livedev
// package alone.
func TestFacadeEndToEnd(t *testing.T) {
	point := livedev.MustStructOf("Point",
		livedev.StructField{Name: "x", Type: livedev.Float64Type},
		livedev.StructField{Name: "y", Type: livedev.Float64Type})

	geo := livedev.NewClass("Geo")
	midID, err := geo.AddMethod(livedev.MethodSpec{
		Name:        "midpoint",
		Params:      []livedev.Param{{Name: "a", Type: point}, {Name: "b", Type: point}},
		Result:      point,
		Distributed: true,
		Body: func(_ *livedev.Instance, args []livedev.Value) (livedev.Value, error) {
			ax, _ := args[0].Field("x")
			ay, _ := args[0].Field("y")
			bx, _ := args[1].Field("x")
			by, _ := args[1].Field("y")
			return livedev.Struct(point,
				livedev.Float64((ax.Float64()+bx.Float64())/2),
				livedev.Float64((ay.Float64()+by.Float64())/2))
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	mgr, err := livedev.NewManager(livedev.Config{Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	srv, err := mgr.Register(geo, livedev.TechSOAP)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		t.Fatal(err)
	}

	client, err := livedev.Dial(context.Background(), srv.InterfaceURL())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	a, err := livedev.Struct(point, livedev.Float64(0), livedev.Float64(0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := livedev.Struct(point, livedev.Float64(4), livedev.Float64(2))
	if err != nil {
		t.Fatal(err)
	}
	mid, err := client.CallContext(context.Background(), "midpoint", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if x, _ := mid.Field("x"); x.Float64() != 2 {
		t.Errorf("midpoint.x = %v", x)
	}
	if y, _ := mid.Field("y"); y.Float64() != 1 {
		t.Errorf("midpoint.y = %v", y)
	}

	// Live rename + stale recovery through the facade's sentinel.
	if err := geo.RenameMethod(midID, "center"); err != nil {
		t.Fatal(err)
	}
	_, err = client.CallContext(context.Background(), "midpoint", a, b)
	if !errors.Is(err, livedev.ErrStaleMethod) {
		t.Fatalf("stale call: %v", err)
	}
	var stale *livedev.StaleMethodError
	if !errors.As(err, &stale) || stale.Method != "midpoint" {
		t.Fatalf("stale error shape: %v", err)
	}
	if _, err := client.CallContext(context.Background(), "center", a, b); err != nil {
		t.Errorf("call under new name: %v", err)
	}
}

// TestFacadeValueConstructors covers the re-exported constructors.
func TestFacadeValueConstructors(t *testing.T) {
	if !livedev.Bool(true).Bool() || livedev.Char('x').Char() != 'x' ||
		livedev.Int32(1).Int32() != 1 || livedev.Int64(2).Int64() != 2 ||
		livedev.Float32(1.5).Float32() != 1.5 || livedev.Float64(2.5).Float64() != 2.5 ||
		livedev.Str("s").Str() != "s" || !livedev.Void().IsVoid() {
		t.Error("value constructors broken")
	}
	seq, err := livedev.Sequence(livedev.Int32Type, livedev.Int32(1))
	if err != nil || seq.Len() != 1 {
		t.Errorf("Sequence = %v, %v", seq, err)
	}
	if _, err := livedev.StructOf(""); err == nil {
		t.Error("StructOf should validate")
	}
	if livedev.SequenceOf(livedev.StringType).Elem() != livedev.StringType {
		t.Error("SequenceOf")
	}
}

// TestFacadeCORBA covers the CORBA direction through the facade.
func TestFacadeCORBA(t *testing.T) {
	ping := livedev.NewClass("Ping")
	if _, err := ping.AddMethod(livedev.MethodSpec{
		Name:        "ping",
		Result:      livedev.StringType,
		Distributed: true,
		Body: func(*livedev.Instance, []livedev.Value) (livedev.Value, error) {
			return livedev.Str("pong"), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	mgr, err := livedev.NewManager(livedev.Config{Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	srv, err := mgr.Register(ping, livedev.TechCORBA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		t.Fatal(err)
	}
	// The facade keeps the CORBA server's extra URLs reachable through
	// the concrete type.
	type corbaURLs interface {
		InterfaceURL() string
		IORURL() string
	}
	cs, ok := srv.(corbaURLs)
	if !ok {
		t.Fatal("CORBA server should expose IORURL")
	}
	client, err := livedev.Dial(context.Background(), cs.InterfaceURL(), livedev.WithAuxURL(cs.IORURL()))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	v, err := client.CallContext(context.Background(), "ping")
	if err != nil || v.Str() != "pong" {
		t.Errorf("ping = %v, %v", v, err)
	}
}
