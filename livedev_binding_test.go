package livedev_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"livedev"
)

// TestJSONBindingPluggedInViaRegistryOnly is the acceptance test for the
// binding seam: the JSON/HTTP technology is registered purely through
// livedev.RegisterBinding (no core edits), a dynamic class is published
// through it, called via livedev.Dial with document sniffing, and a live
// method edit is observed through the paper's reactive-update protocol —
// the same flow the SOAP and CORBA suites exercise.
func TestJSONBindingPluggedInViaRegistryOnly(t *testing.T) {
	livedev.RegisterBinding(livedev.JSONBinding())

	found := false
	for _, name := range livedev.Bindings() {
		if name == "JSON" {
			found = true
		}
	}
	if !found {
		t.Fatalf("JSON missing from registered bindings %v", livedev.Bindings())
	}

	greet := livedev.NewClass("Greeter")
	id, err := greet.AddMethod(livedev.MethodSpec{
		Name:        "greet",
		Params:      []livedev.Param{{Name: "who", Type: livedev.StringType}},
		Result:      livedev.StringType,
		Distributed: true,
		Body: func(_ *livedev.Instance, args []livedev.Value) (livedev.Value, error) {
			return livedev.Str("hello " + args[0].Str()), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	mgr, err := livedev.NewManager(livedev.Config{Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	srv, err := mgr.Register(greet, livedev.Technology("JSON"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		t.Fatal(err)
	}

	// Dial with nothing but the interface URL: the registry's document
	// sniffing must route to the JSON binding.
	ctx := context.Background()
	client, err := livedev.Dial(ctx, srv.InterfaceURL())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if client.Technology() != "JSON" {
		t.Fatalf("sniffing picked %s, want JSON", client.Technology())
	}

	got, err := client.CallContext(ctx, "greet", livedev.Str("world"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Str() != "hello world" {
		t.Errorf("greet = %q", got.Str())
	}

	// Live edit: rename the method while the client holds the old view.
	// The stale call must come back as a StaleMethodError with the view
	// already refreshed, and the new name must work immediately.
	if err := greet.RenameMethod(id, "salute"); err != nil {
		t.Fatal(err)
	}
	_, err = client.CallContext(ctx, "greet", livedev.Str("world"))
	var stale *livedev.StaleMethodError
	if !errors.As(err, &stale) || !errors.Is(err, livedev.ErrStaleMethod) {
		t.Fatalf("want StaleMethodError, got %v", err)
	}
	if _, ok := client.Interface().Lookup("salute"); !ok {
		t.Fatal("client view should contain salute after the reactive refresh")
	}
	got, err = client.CallContext(ctx, "salute", livedev.Str("again"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Str() != "hello again" {
		t.Errorf("salute = %q", got.Str())
	}

	// The debugger recorded the failure and TryAgain fails (the method is
	// renamed), but a WithDebugger-dialed client observed the prompt; the
	// deprecated shim path is covered by the option test below.
	if _, ok := client.Debugger().Last(); !ok {
		t.Error("debugger should have recorded the stale call")
	}
}

// TestDialOptions covers WithBinding (explicit routing), WithTimeout (the
// per-call default deadline), and WithDebugger (the prompt hook).
func TestDialOptions(t *testing.T) {
	livedev.RegisterBinding(livedev.JSONBinding())

	block := make(chan struct{})
	var releaseOnce sync.Once
	release := func() { releaseOnce.Do(func() { close(block) }) }
	defer release()
	slow := livedev.NewClass("SlowJSON")
	_, _ = slow.AddMethod(livedev.MethodSpec{
		Name: "hang", Result: livedev.StringType, Distributed: true,
		Body: func(_ *livedev.Instance, _ []livedev.Value) (livedev.Value, error) {
			<-block
			return livedev.Str("late"), nil
		},
	})
	_, _ = slow.AddMethod(livedev.MethodSpec{
		Name: "quick", Result: livedev.StringType, Distributed: true,
		Body: func(_ *livedev.Instance, _ []livedev.Value) (livedev.Value, error) {
			return livedev.Str("ok"), nil
		},
	})

	mgr, err := livedev.NewManager(livedev.Config{Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	srv, err := mgr.Register(slow, livedev.Technology("JSON"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		t.Fatal(err)
	}

	prompted := make(chan livedev.Exception, 1)
	client, err := livedev.Dial(context.Background(), srv.InterfaceURL(),
		livedev.WithBinding("JSON"),
		livedev.WithTimeout(80*time.Millisecond),
		livedev.WithDebugger(func(ex livedev.Exception) {
			select {
			case prompted <- ex:
			default:
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if got, err := client.CallContext(context.Background(), "quick"); err != nil || got.Str() != "ok" {
		t.Fatalf("quick = %v, %v", got, err)
	}

	// No explicit deadline: the WithTimeout default must bound the call.
	start := time.Now()
	_, err = client.CallContext(context.Background(), "hang")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded from the default timeout, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("default timeout fired after %v", elapsed)
	}
	// Release the parked hang body: the stale path below takes the write
	// gate, which (correctly) waits for in-flight calls to drain.
	release()

	// A stale call triggers the WithDebugger prompt.
	id, _ := slow.MethodIDByName("quick")
	if err := slow.RenameMethod(id, "swift"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.CallContext(context.Background(), "quick"); !errors.Is(err, livedev.ErrStaleMethod) {
		t.Fatalf("want stale, got %v", err)
	}
	select {
	case ex := <-prompted:
		if ex.Method != "quick" {
			t.Errorf("prompt for %q", ex.Method)
		}
	default:
		t.Error("WithDebugger prompt was not invoked")
	}
}

// TestCancellationAcrossAllBindings proves the tentpole's end-to-end
// context guarantee on every registered technology: a context cancelled
// mid-call aborts an in-flight invocation on SOAP, CORBA, JSON, and H2B
// alike, returning an error wrapping context.Canceled, promptly.
func TestCancellationAcrossAllBindings(t *testing.T) {
	livedev.RegisterBinding(livedev.JSONBinding())
	livedev.RegisterBinding(livedev.H2BBinding())

	block := make(chan struct{})
	newSlowClass := func(name string) *livedev.Class {
		c := livedev.NewClass(name)
		_, _ = c.AddMethod(livedev.MethodSpec{
			Name: "hang", Result: livedev.StringType, Distributed: true,
			Body: func(_ *livedev.Instance, _ []livedev.Value) (livedev.Value, error) {
				<-block
				return livedev.Str("late"), nil
			},
		})
		return c
	}

	mgr, err := livedev.NewManager(livedev.Config{Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	// LIFO: the blocked method bodies must be released before mgr.Close
	// joins the CORBA server's handler goroutines.
	defer close(block)

	cases := []struct {
		tech livedev.Technology
		name string
	}{
		{livedev.TechSOAP, "SlowSOAP"},
		{livedev.TechCORBA, "SlowCORBA"},
		{livedev.Technology("JSON"), "SlowJSONC"},
		// A cancelled h2b call must reset its HTTP/2 stream, not linger
		// until the method body returns.
		{livedev.Technology("H2B"), "SlowH2B"},
	}
	for _, tc := range cases {
		t.Run(string(tc.tech), func(t *testing.T) {
			srv, err := mgr.Register(newSlowClass(tc.name), tc.tech)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := srv.CreateInstance(); err != nil {
				t.Fatal(err)
			}
			client, err := livedev.Dial(context.Background(), srv.InterfaceURL())
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()
			if got := livedev.Technology(client.Technology()); got != tc.tech {
				t.Fatalf("sniffed %s, want %s", got, tc.tech)
			}

			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(30 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			_, err = client.CallContext(ctx, "hang")
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
			if elapsed := time.Since(start); elapsed > 2*time.Second {
				t.Errorf("cancellation took %v", elapsed)
			}
		})
	}
}
