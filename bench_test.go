// Benchmarks regenerating the paper's quantitative artifacts. One
// benchmark (group) per table/figure, plus the call-path decomposition and
// the ablations DESIGN.md calls out:
//
//	Table 1    -> BenchmarkTable1_*           (RTT per configuration)
//	Figure 7   -> BenchmarkFigure7Matrix      (active-publishing matrix)
//	Figure 8   -> BenchmarkFigure8Matrix      (reactive-publishing matrix)
//	Section5.6 -> BenchmarkPublisherStrategies (publication-policy sweep)
//	Section5.7 -> BenchmarkStaleCall_*        (forced publication by state)
//	           -> BenchmarkRogueClientStorm   (rogue-client defence)
//	Section 7  -> BenchmarkCallPath_*         (per-stage overhead)
package livedev_test

import (
	"context"
	"testing"
	"time"

	"livedev"
	"livedev/internal/cdr"
	"livedev/internal/clock"
	"livedev/internal/core"
	"livedev/internal/dyn"
	"livedev/internal/experiments"
	"livedev/internal/h2b"
	"livedev/internal/idl"
	"livedev/internal/jsonb"
	"livedev/internal/orb"
	"livedev/internal/raceplan"
	"livedev/internal/soap"
	"livedev/internal/static"
	"livedev/internal/workload"
	"livedev/internal/wsdl"
)

const benchPayload = "benchmark-payload-0123456789-benchmark-payload-0123456789-abcdef"

func echoClass(name string) *dyn.Class {
	c := dyn.NewClass(name)
	_, _ = c.AddMethod(dyn.MethodSpec{
		Name:        "echo",
		Params:      []dyn.Param{{Name: "s", Type: dyn.StringT}},
		Result:      dyn.StringT,
		Distributed: true,
		Body: func(_ *dyn.Instance, args []dyn.Value) (dyn.Value, error) {
			return args[0], nil
		},
	})
	return c
}

func echoOps() []static.Op {
	return []static.Op{{
		Name:   "echo",
		Params: []dyn.Param{{Name: "s", Type: dyn.StringT}},
		Result: dyn.StringT,
		Fn:     func(args []dyn.Value) (dyn.Value, error) { return args[0], nil },
	}}
}

func echoSig() dyn.MethodSig {
	return dyn.MethodSig{
		Name:   "echo",
		Params: []dyn.Param{{Name: "s", Type: dyn.StringT}},
		Result: dyn.StringT,
	}
}

// --- Table 1: one benchmark per row ---

// BenchmarkTable1_SDESOAP measures the "SDE SOAP/Axis" row: a live SDE
// SOAP server called by a static SOAP client.
func BenchmarkTable1_SDESOAP(b *testing.B) {
	mgr, err := core.NewManager(core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer mgr.Close()
	srv, err := mgr.Register(echoClass("B1"), core.TechSOAP)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		b.Fatal(err)
	}
	client := &soap.Client{Endpoint: srv.(*core.SOAPServer).Endpoint(), ServiceNS: "urn:B1"}
	args := []soap.NamedValue{{Name: "s", Value: dyn.StringValue(benchPayload)}}
	ctx := context.Background()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := client.CallContext(ctx, "echo", args, dyn.StringT); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1_StaticSOAP measures the "Axis-Tomcat/Axis" row.
func BenchmarkTable1_StaticSOAP(b *testing.B) {
	srv, err := static.NewSOAPServer("urn:B2", echoOps())
	if err != nil {
		b.Fatal(err)
	}
	endpoint, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client := &soap.Client{Endpoint: endpoint, ServiceNS: "urn:B2"}
	args := []soap.NamedValue{{Name: "s", Value: dyn.StringValue(benchPayload)}}
	ctx := context.Background()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := client.CallContext(ctx, "echo", args, dyn.StringT); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1_SDECORBA measures the "SDE CORBA/OpenORB" row.
func BenchmarkTable1_SDECORBA(b *testing.B) {
	mgr, err := core.NewManager(core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer mgr.Close()
	srv, err := mgr.Register(echoClass("B3"), core.TechCORBA)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		b.Fatal(err)
	}
	conn, err := orb.DialIOR(srv.(*core.CORBAServer).IOR())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	sig := echoSig()
	args := []dyn.Value{dyn.StringValue(benchPayload)}
	ctx := context.Background()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := conn.InvokeContext(ctx, sig, args); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1_StaticCORBA measures the "OpenORB/OpenORB" row.
func BenchmarkTable1_StaticCORBA(b *testing.B) {
	srv, err := static.NewCORBAServer("IDL:B4Module/B4:1.0", []byte("b4"), echoOps())
	if err != nil {
		b.Fatal(err)
	}
	ref, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	conn, err := orb.DialIOR(ref)
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	sig := echoSig()
	args := []dyn.Value{dyn.StringValue(benchPayload)}
	ctx := context.Background()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := conn.InvokeContext(ctx, sig, args); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1_SDEJSON measures the JSON-binding row added with the v2
// binding seam: a live SDE JSON server called over JSON-POST.
func BenchmarkTable1_SDEJSON(b *testing.B) {
	core.RegisterBinding(jsonb.New())
	mgr, err := core.NewManager(core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer mgr.Close()
	srv, err := mgr.Register(echoClass("B5"), core.Technology(jsonb.Name))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		b.Fatal(err)
	}
	caller := &jsonb.Caller{Endpoint: srv.(*jsonb.Server).Endpoint()}
	sig := echoSig()
	args := []dyn.Value{dyn.StringValue(benchPayload)}
	ctx := context.Background()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := caller.Call(ctx, sig, args); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1_SDEH2B measures the CDR-over-HTTP/2 row: a live SDE H2B
// server called with pooled CDR encoding over a prior-knowledge h2c stream.
func BenchmarkTable1_SDEH2B(b *testing.B) {
	core.RegisterBinding(h2b.New())
	mgr, err := core.NewManager(core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer mgr.Close()
	srv, err := mgr.Register(echoClass("B6"), core.Technology(h2b.Name))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		b.Fatal(err)
	}
	caller := &h2b.Caller{Endpoint: srv.(*h2b.Server).Endpoint(), Mux: srv.(*h2b.Server).MuxAddr()}
	sig := echoSig()
	args := []dyn.Value{dyn.StringValue(benchPayload)}
	ctx := context.Background()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := caller.Call(ctx, sig, args); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 1, parallel rows: the multiplexed fast path ---
//
// The *Parallel variants drive the same echo workload from GOMAXPROCS
// goroutines. For the HTTP bindings this is where connection handling
// dominates: JSON opens/queues HTTP/1.1 connections per caller while H2B
// multiplexes every caller as a stream on one TCP connection.

// BenchmarkTable1_SDESOAPParallel measures SDE SOAP under concurrent callers.
func BenchmarkTable1_SDESOAPParallel(b *testing.B) {
	mgr, err := core.NewManager(core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer mgr.Close()
	srv, err := mgr.Register(echoClass("BP1"), core.TechSOAP)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		b.Fatal(err)
	}
	client := &soap.Client{Endpoint: srv.(*core.SOAPServer).Endpoint(), ServiceNS: "urn:BP1"}
	args := []soap.NamedValue{{Name: "s", Value: dyn.StringValue(benchPayload)}}
	ctx := context.Background()
	b.ResetTimer()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := client.CallContext(ctx, "echo", args, dyn.StringT); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable1_SDECORBAParallel measures SDE CORBA under concurrent
// callers sharing one GIOP connection.
func BenchmarkTable1_SDECORBAParallel(b *testing.B) {
	mgr, err := core.NewManager(core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer mgr.Close()
	srv, err := mgr.Register(echoClass("BP2"), core.TechCORBA)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		b.Fatal(err)
	}
	conn, err := orb.DialIOR(srv.(*core.CORBAServer).IOR())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	sig := echoSig()
	args := []dyn.Value{dyn.StringValue(benchPayload)}
	ctx := context.Background()
	b.ResetTimer()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := conn.InvokeContext(ctx, sig, args); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable1_SDEJSONParallel measures the JSON binding under
// concurrent callers (HTTP/1.1 connection-per-request semantics).
func BenchmarkTable1_SDEJSONParallel(b *testing.B) {
	core.RegisterBinding(jsonb.New())
	mgr, err := core.NewManager(core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer mgr.Close()
	srv, err := mgr.Register(echoClass("BP3"), core.Technology(jsonb.Name))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		b.Fatal(err)
	}
	caller := &jsonb.Caller{Endpoint: srv.(*jsonb.Server).Endpoint()}
	sig := echoSig()
	args := []dyn.Value{dyn.StringValue(benchPayload)}
	ctx := context.Background()
	b.ResetTimer()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := caller.Call(ctx, sig, args); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable1_SDEH2BParallel measures the CDR-over-HTTP/2 binding
// under concurrent callers — every worker's calls multiplex as h2 streams
// over the binding's single shared TCP connection to the endpoint.
func BenchmarkTable1_SDEH2BParallel(b *testing.B) {
	core.RegisterBinding(h2b.New())
	mgr, err := core.NewManager(core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer mgr.Close()
	srv, err := mgr.Register(echoClass("BP4"), core.Technology(h2b.Name))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		b.Fatal(err)
	}
	caller := &h2b.Caller{Endpoint: srv.(*h2b.Server).Endpoint(), Mux: srv.(*h2b.Server).MuxAddr()}
	sig := echoSig()
	args := []dyn.Value{dyn.StringValue(benchPayload)}
	ctx := context.Background()
	b.ResetTimer()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := caller.Call(ctx, sig, args); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Figures 7 and 8 ---

// BenchmarkFigure7Matrix simulates the full active-publishing interleaving
// matrix and checks the 3-of-9 consistency result each iteration.
func BenchmarkFigure7Matrix(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, total := raceplan.ConsistentCount(raceplan.ActivePublishing)
		if c != 3 || total != 9 {
			b.Fatalf("Figure 7 matrix wrong: %d/%d", c, total)
		}
	}
}

// BenchmarkFigure8Matrix simulates the reactive-publishing matrix and
// checks the all-consistent result each iteration.
func BenchmarkFigure8Matrix(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, total := raceplan.ConsistentCount(raceplan.ReactivePublishing)
		if c != 16 || total != 16 {
			b.Fatalf("Figure 8 matrix wrong: %d/%d", c, total)
		}
	}
}

// --- Section 5.6: publication strategies ---

// BenchmarkPublisherStrategies replays a deterministic developer edit
// trace in virtual time under all three publication policies.
func BenchmarkPublisherStrategies(b *testing.B) {
	cfg := experiments.DefaultSweep(1)
	cfg.Trace.Bursts = 6
	cfg.Timeouts = []time.Duration{200 * time.Millisecond, time.Second}
	cfg.PollIntervals = []time.Duration{time.Second}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSweep(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Section 5.7: forced publication ---

// BenchmarkStaleCall_IdleCurrent measures EnsureCurrent when the publisher
// is idle and current (the rogue-client fast path).
func BenchmarkStaleCall_IdleCurrent(b *testing.B) {
	class := echoClass("BS1")
	p := core.NewDLPublisher(class, time.Hour, clock.Real{}, func(dyn.InterfaceDescriptor) error { return nil })
	defer p.Close()
	p.PublishNow()
	p.WaitIdle()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.EnsureCurrent()
	}
}

// BenchmarkStaleCall_TimerArmed measures EnsureCurrent when an edit is
// pending (timer armed): each iteration forces one generation.
func BenchmarkStaleCall_TimerArmed(b *testing.B) {
	class := echoClass("BS2")
	id, _ := class.MethodIDByName("echo")
	p := core.NewDLPublisher(class, time.Hour, clock.Real{}, func(dyn.InterfaceDescriptor) error { return nil })
	defer p.Close()
	p.PublishNow()
	p.WaitIdle()
	names := [2]string{"echoA", "echoB"}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := class.RenameMethod(id, names[i%2]); err != nil {
			b.Fatal(err)
		}
		p.EnsureCurrent()
	}
}

// BenchmarkRogueClientStorm sends stale SOAP calls to a live SDE server
// whose published interface is already current: the Section 5.7 algorithm
// must answer each without triggering a generation.
func BenchmarkRogueClientStorm(b *testing.B) {
	mgr, err := core.NewManager(core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer mgr.Close()
	srv, err := mgr.Register(echoClass("BRogue"), core.TechSOAP)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		b.Fatal(err)
	}
	ss := srv.(*core.SOAPServer)
	client := &soap.Client{Endpoint: ss.Endpoint(), ServiceNS: "urn:BRogue"}
	before := srv.Publisher().Stats().Generations
	ctx := context.Background()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := client.CallContext(ctx, "nonexistent", nil, dyn.StringT)
		if !soap.IsNonExistentMethod(err) {
			b.Fatalf("unexpected reply: %v", err)
		}
	}
	b.StopTimer()
	if extra := srv.Publisher().Stats().Generations - before; extra > 1 {
		b.Fatalf("rogue storm triggered %d generations", extra)
	}
}

// --- Section 7: call-path decomposition (network-free) ---

// BenchmarkCallPath_DynInvoke measures dynamic dispatch through the live
// method table — the per-call cost the SDE adds over a static jump.
func BenchmarkCallPath_DynInvoke(b *testing.B) {
	class := echoClass("BCP")
	in := class.NewInstance()
	arg := dyn.StringValue(benchPayload)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := in.InvokeDistributed("echo", arg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCallPath_SOAPBuildRequest measures SOAP request encoding.
func BenchmarkCallPath_SOAPBuildRequest(b *testing.B) {
	params := []soap.NamedValue{{Name: "s", Value: dyn.StringValue(benchPayload)}}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := soap.BuildRequest("urn:B", "echo", params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCallPath_SOAPParseRequest measures SOAP request parsing.
func BenchmarkCallPath_SOAPParseRequest(b *testing.B) {
	env, err := soap.BuildRequest("urn:B", "echo",
		[]soap.NamedValue{{Name: "s", Value: dyn.StringValue(benchPayload)}})
	if err != nil {
		b.Fatal(err)
	}
	raw := []byte(env)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := soap.ParseRequest(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCallPath_CDREncode measures CDR argument encoding through the
// pooled encoder lifecycle the transports use (GetEncoder → encode →
// PutEncoder), so the number tracks the production encode path.
func BenchmarkCallPath_CDREncode(b *testing.B) {
	v := dyn.StringValue(benchPayload)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := cdr.GetEncoder(cdr.BigEndian)
		if err := cdr.EncodeValue(e, v); err != nil {
			b.Fatal(err)
		}
		cdr.PutEncoder(e)
	}
}

// BenchmarkCallPath_CDRDecode measures CDR argument decoding with a reused
// decoder over a caller-owned buffer (zero-copy string reads), the
// allocation floor of the decode path.
func BenchmarkCallPath_CDRDecode(b *testing.B) {
	e := cdr.NewEncoder(cdr.BigEndian)
	if err := cdr.EncodeValue(e, dyn.StringValue(benchPayload)); err != nil {
		b.Fatal(err)
	}
	raw := e.Bytes()
	var d cdr.Decoder
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Reset(raw, cdr.BigEndian)
		d.SetZeroCopy(true) // raw outlives every decoded value here
		if _, err := cdr.DecodeValue(&d, dyn.StringT); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCallPath_InterfaceLookup measures the live interface snapshot +
// lookup the SDE handlers perform per request.
func BenchmarkCallPath_InterfaceLookup(b *testing.B) {
	class := echoClass("BLookup")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := class.Interface().Lookup("echo"); !ok {
			b.Fatal("lookup failed")
		}
	}
}

// --- Generation costs (the "relatively expensive operation" of 5.6) ---

// BenchmarkGenerate_WSDL measures WSDL document generation + serialization.
func BenchmarkGenerate_WSDL(b *testing.B) {
	desc := echoClass("BW").Interface()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		doc := wsdl.Generate(desc, "http://127.0.0.1:1/BW")
		if _, err := doc.XML(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerate_IDL measures CORBA-IDL generation + printing.
func BenchmarkGenerate_IDL(b *testing.B) {
	desc := echoClass("BI").Interface()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		doc, err := idl.Generate(desc)
		if err != nil {
			b.Fatal(err)
		}
		_ = idl.Print(doc)
	}
}

// BenchmarkCompile_WSDL measures the client-side WSDL compiler.
func BenchmarkCompile_WSDL(b *testing.B) {
	doc := wsdl.Generate(echoClass("BCW").Interface(), "http://127.0.0.1:1/BCW")
	text, err := doc.XML()
	if err != nil {
		b.Fatal(err)
	}
	raw := []byte(text)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wsdl.Parse(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompile_IDL measures the client-side IDL compiler.
func BenchmarkCompile_IDL(b *testing.B) {
	doc, err := idl.Generate(echoClass("BCI").Interface())
	if err != nil {
		b.Fatal(err)
	}
	text := idl.Print(doc)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		parsed, err := idl.Parse(text)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := idl.Resolve(parsed, "BCI"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- End-to-end live development cycle ---

// BenchmarkLiveEditToRepublish measures a full edit→forced-publish cycle
// against a live manager (the developer's perceived latency when hitting
// "publish now" after an edit).
func BenchmarkLiveEditToRepublish(b *testing.B) {
	mgr, err := livedev.NewManager(livedev.Config{Timeout: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	defer mgr.Close()
	class := echoClass("BLive")
	srv, err := mgr.Register(class, livedev.TechSOAP)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		b.Fatal(err)
	}
	id, _ := class.MethodIDByName("echo")
	names := [2]string{"echoA", "echoB"}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := class.RenameMethod(id, names[i%2]); err != nil {
			b.Fatal(err)
		}
		srv.Publisher().PublishNow()
		srv.Publisher().WaitIdle()
	}
}

// BenchmarkRTTMeasurementOverhead quantifies the measurement harness's own
// cost so Table 1 numbers can be interpreted.
func BenchmarkRTTMeasurementOverhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := workload.MeasureRTT(1, func() error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}
