// Bank-corba: a CORBA-RMI bank service with per-account state held in
// dynamic fields, served through the SDE's server ORB (DSI) and consumed
// through a CDE client (DII), with the full IOR + CORBA-IDL bootstrap of
// the paper's Figure 2. The interface then evolves live: withdraw gains an
// overdraft-protection parameter, and the connected client observes the
// signature change through the reactive protocol.
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"livedev"
	"livedev/internal/core"
	"livedev/internal/ifsvr"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bank-corba:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	var mu sync.Mutex
	balances := map[string]int64{"alice": 1000, "bob": 50}

	bank := livedev.NewClass("Bank")
	if _, err := bank.AddMethod(livedev.MethodSpec{
		Name:        "balance",
		Params:      []livedev.Param{{Name: "account", Type: livedev.StringType}},
		Result:      livedev.Int64Type,
		Distributed: true,
		Body: func(_ *livedev.Instance, args []livedev.Value) (livedev.Value, error) {
			mu.Lock()
			defer mu.Unlock()
			b, ok := balances[args[0].Str()]
			if !ok {
				return livedev.Value{}, fmt.Errorf("no such account %q", args[0].Str())
			}
			return livedev.Int64(b), nil
		},
	}); err != nil {
		return err
	}
	withdrawID, err := bank.AddMethod(livedev.MethodSpec{
		Name: "withdraw",
		Params: []livedev.Param{
			{Name: "account", Type: livedev.StringType},
			{Name: "amount", Type: livedev.Int64Type},
		},
		Result:      livedev.Int64Type,
		Distributed: true,
		Body: func(_ *livedev.Instance, args []livedev.Value) (livedev.Value, error) {
			mu.Lock()
			defer mu.Unlock()
			acct, amt := args[0].Str(), args[1].Int64()
			balances[acct] -= amt // v1 semantics: overdrafts allowed!
			return livedev.Int64(balances[acct]), nil
		},
	})
	if err != nil {
		return err
	}

	mgr, err := livedev.NewManager(livedev.Config{Timeout: 100 * time.Millisecond})
	if err != nil {
		return err
	}
	defer func() { _ = mgr.Close() }()
	srv, err := mgr.Register(bank, livedev.TechCORBA)
	if err != nil {
		return err
	}
	if _, err := srv.CreateInstance(); err != nil {
		return err
	}
	cs := srv.(*core.CORBAServer)
	fmt.Println("CORBA-IDL:", cs.InterfaceURL())
	fmt.Println("IOR:      ", cs.IORURL())

	// Show the published artifacts, as a CORBA client would fetch them.
	idlDoc, err := ifsvr.FetchContext(ctx, nil, cs.InterfaceURL())
	if err != nil {
		return err
	}
	fmt.Println("published IDL document:")
	fmt.Print(indent(idlDoc.Content))

	// Dial sniffs the IDL document and derives the IOR URL from the
	// /idl/ <-> /ior/ publication convention (WithAuxURL would override).
	teller, err := livedev.Dial(ctx, cs.InterfaceURL())
	if err != nil {
		return err
	}
	defer func() { _ = teller.Close() }()

	bal, err := teller.CallContext(ctx, "balance", livedev.Str("bob"))
	if err != nil {
		return err
	}
	fmt.Println("bob's balance:", bal)

	// v1 allows overdrafts — a bug the developer notices in live testing.
	after, err := teller.CallContext(ctx, "withdraw", livedev.Str("bob"), livedev.Int64(200))
	if err != nil {
		return err
	}
	fmt.Println("bob withdrew 200 ->", after, "(overdraft! fixing live...)")

	// The developer changes the signature live: withdraw gains an
	// allowOverdraft parameter and the body enforces it.
	if err := bank.SetParams(withdrawID, []livedev.Param{
		{Name: "account", Type: livedev.StringType},
		{Name: "amount", Type: livedev.Int64Type},
		{Name: "allowOverdraft", Type: livedev.BooleanType},
	}); err != nil {
		return err
	}
	if err := bank.SetBody(withdrawID, func(_ *livedev.Instance, args []livedev.Value) (livedev.Value, error) {
		mu.Lock()
		defer mu.Unlock()
		acct, amt, allow := args[0].Str(), args[1].Int64(), args[2].Bool()
		if !allow && balances[acct] < amt {
			return livedev.Value{}, fmt.Errorf("insufficient funds in %q", acct)
		}
		balances[acct] -= amt
		return livedev.Int64(balances[acct]), nil
	}); err != nil {
		return err
	}
	fmt.Println("developer changed withdraw/2 -> withdraw/3 live")

	// The teller's next old-style call runs the reactive protocol: forced
	// IDL publication on the server, view refresh on the client.
	_, err = teller.CallContext(ctx, "withdraw", livedev.Str("bob"), livedev.Int64(10))
	if !errors.Is(err, livedev.ErrStaleMethod) {
		return fmt.Errorf("expected stale-method error, got %v", err)
	}
	fmt.Println("teller's stale call rejected; refreshed interface:")
	for _, m := range teller.Interface().Methods {
		fmt.Println("  ", m)
	}

	// Retry with the new signature: overdraft now refused.
	_, err = teller.CallContext(ctx, "withdraw", livedev.Str("bob"), livedev.Int64(10_000), livedev.Bool(false))
	if err == nil {
		return fmt.Errorf("overdraft should have been refused")
	}
	fmt.Println("overdraft refused:", err)

	after, err = teller.CallContext(ctx, "withdraw", livedev.Str("alice"), livedev.Int64(300), livedev.Bool(false))
	if err != nil {
		return err
	}
	fmt.Println("alice withdrew 300 ->", after)
	return nil
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
