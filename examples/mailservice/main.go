// Mailservice: the "medium-sized mail service application" the paper's
// conclusion describes building with CDE and SDE. A Mail class with
// composite types (a Message struct, message sequences) is served over
// SOAP and evolved live: while clients send and fetch mail, the developer
// adds a search method, and connected clients pick it up without
// restarting.
package main

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"livedev"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mailservice:", err)
		os.Exit(1)
	}
}

// mailbox is the server-side state; the dynamic class's method bodies
// close over it (in JPie this state would live in dynamic fields).
type mailbox struct {
	mu   sync.Mutex
	msgs map[string][]livedev.Value // user -> messages
}

func run() error {
	message := livedev.MustStructOf("Message",
		livedev.StructField{Name: "from", Type: livedev.StringType},
		livedev.StructField{Name: "to", Type: livedev.StringType},
		livedev.StructField{Name: "body", Type: livedev.StringType},
		livedev.StructField{Name: "id", Type: livedev.Int64Type},
	)
	box := &mailbox{msgs: make(map[string][]livedev.Value)}
	var nextID int64

	mail := livedev.NewClass("Mail")
	if _, err := mail.AddMethod(livedev.MethodSpec{
		Name:        "send",
		Params:      []livedev.Param{{Name: "m", Type: message}},
		Result:      livedev.Int64Type,
		Distributed: true,
		Body: func(_ *livedev.Instance, args []livedev.Value) (livedev.Value, error) {
			m := args[0]
			to, _ := m.Field("to")
			box.mu.Lock()
			defer box.mu.Unlock()
			nextID++
			from, _ := m.Field("from")
			body, _ := m.Field("body")
			stored, err := livedev.Struct(message, from, to, body, livedev.Int64(nextID))
			if err != nil {
				return livedev.Value{}, err
			}
			box.msgs[to.Str()] = append(box.msgs[to.Str()], stored)
			return livedev.Int64(nextID), nil
		},
	}); err != nil {
		return err
	}
	if _, err := mail.AddMethod(livedev.MethodSpec{
		Name:        "fetch",
		Params:      []livedev.Param{{Name: "user", Type: livedev.StringType}},
		Result:      livedev.SequenceOf(message),
		Distributed: true,
		Body: func(_ *livedev.Instance, args []livedev.Value) (livedev.Value, error) {
			box.mu.Lock()
			defer box.mu.Unlock()
			return livedev.Sequence(message, box.msgs[args[0].Str()]...)
		},
	}); err != nil {
		return err
	}

	mgr, err := livedev.NewManager(livedev.Config{Timeout: 100 * time.Millisecond})
	if err != nil {
		return err
	}
	defer func() { _ = mgr.Close() }()
	srv, err := mgr.Register(mail, livedev.TechSOAP)
	if err != nil {
		return err
	}
	if _, err := srv.CreateInstance(); err != nil {
		return err
	}
	fmt.Println("mail service WSDL:", srv.InterfaceURL())

	// Two independent live clients dial the same published document; the
	// SOAP binding is sniffed from the WSDL.
	ctx := context.Background()
	alice, err := livedev.Dial(ctx, srv.InterfaceURL(), livedev.WithTimeout(10*time.Second))
	if err != nil {
		return err
	}
	defer func() { _ = alice.Close() }()
	bob, err := livedev.Dial(ctx, srv.InterfaceURL(), livedev.WithTimeout(10*time.Second))
	if err != nil {
		return err
	}
	defer func() { _ = bob.Close() }()

	// Alice sends Bob two messages.
	for _, body := range []string{"lunch at noon?", "bring the IDL spec"} {
		m, err := livedev.Struct(message,
			livedev.Str("alice"), livedev.Str("bob"), livedev.Str(body), livedev.Int64(0))
		if err != nil {
			return err
		}
		id, err := alice.CallContext(ctx, "send", m)
		if err != nil {
			return err
		}
		fmt.Printf("alice sent message %v\n", id)
	}

	// Bob fetches his mailbox.
	inbox, err := bob.CallContext(ctx, "fetch", livedev.Str("bob"))
	if err != nil {
		return err
	}
	fmt.Printf("bob has %d messages:\n", inbox.Len())
	for i := 0; i < inbox.Len(); i++ {
		from, _ := inbox.Index(i).Field("from")
		body, _ := inbox.Index(i).Field("body")
		fmt.Printf("  %d. from %v: %v\n", i+1, from, body)
	}

	// Live evolution: the developer adds full-text search while the
	// service is up and clients are connected.
	if _, err := mail.AddMethod(livedev.MethodSpec{
		Name: "search",
		Params: []livedev.Param{
			{Name: "user", Type: livedev.StringType},
			{Name: "needle", Type: livedev.StringType},
		},
		Result:      livedev.SequenceOf(message),
		Distributed: true,
		Body: func(_ *livedev.Instance, args []livedev.Value) (livedev.Value, error) {
			box.mu.Lock()
			defer box.mu.Unlock()
			var hits []livedev.Value
			for _, m := range box.msgs[args[0].Str()] {
				body, _ := m.Field("body")
				if strings.Contains(body.Str(), args[1].Str()) {
					hits = append(hits, m)
				}
			}
			return livedev.Sequence(message, hits...)
		},
	}); err != nil {
		return err
	}
	srv.Publisher().PublishNow() // developer hits "publish now" in the SDE Manager Interface
	srv.Publisher().WaitIdle()
	fmt.Println("developer added search() live; WSDL republished")

	// Bob's client discovers the new method on demand — no restart.
	hits, err := bob.CallContext(ctx, "search", livedev.Str("bob"), livedev.Str("IDL"))
	if err != nil {
		return err
	}
	fmt.Printf("bob searched for %q: %d hit(s)\n", "IDL", hits.Len())
	for i := 0; i < hits.Len(); i++ {
		body, _ := hits.Index(i).Field("body")
		fmt.Println("  match:", body)
	}
	return nil
}
