// Simultaneous: a scripted live, simultaneous client-server development
// session (the paper's Section 6) over both technologies at once. The same
// dynamic class is evolved step by step while a SOAP client and a CORBA
// client stay connected; every server-side edit reaches both clients
// either through the regular publication path (stable-timeout) or through
// the reactive stale-call path, and the CDE debugger's 'try again'
// resumes execution after the server developer restores a signature.
//
// The session runs on the v2 API (Dial, CallContext); the deprecated v1
// shims keep their compile-time coverage in the root package's
// livedev_shim_test.go.
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"livedev"
	"livedev/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "simultaneous:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	mgr, err := livedev.NewManager(livedev.Config{Timeout: 80 * time.Millisecond})
	if err != nil {
		return err
	}
	defer func() { _ = mgr.Close() }()

	// The server developer starts an empty service class; SDE immediately
	// publishes a minimal interface description (paper Section 4), so
	// client development can begin before any method exists.
	makeClass := func(name string) *livedev.Class { return livedev.NewClass(name) }

	soapClass := makeClass("Tasks")
	soapSrv, err := mgr.Register(soapClass, livedev.TechSOAP)
	if err != nil {
		return err
	}
	if _, err := soapSrv.CreateInstance(); err != nil {
		return err
	}
	corbaClass := makeClass("TasksCorba")
	corbaSrv, err := mgr.Register(corbaClass, livedev.TechCORBA)
	if err != nil {
		return err
	}
	if _, err := corbaSrv.CreateInstance(); err != nil {
		return err
	}
	cs := corbaSrv.(*core.CORBAServer)

	// Client developers connect to the minimal interfaces. Dial sniffs the
	// technology from each published document; the CORBA IOR URL comes from
	// the /idl/ <-> /ior/ publication convention (WithAuxURL would
	// override).
	soapClient, err := livedev.Dial(ctx, soapSrv.InterfaceURL())
	if err != nil {
		return err
	}
	defer func() { _ = soapClient.Close() }()
	corbaClient, err := livedev.Dial(ctx, cs.InterfaceURL(), livedev.WithAuxURL(cs.IORURL()))
	if err != nil {
		return err
	}
	defer func() { _ = corbaClient.Close() }()
	fmt.Printf("clients connected; SOAP sees %d methods, CORBA sees %d methods (minimal interfaces)\n",
		len(soapClient.Interface().Methods), len(corbaClient.Interface().Methods))

	// Step 1: the server developer writes the first method on both
	// classes while everything runs.
	addCount := func(class *livedev.Class) error {
		counter := 0
		_, err := class.AddMethod(livedev.MethodSpec{
			Name:        "next",
			Result:      livedev.Int32Type,
			Distributed: true,
			Body: func(*livedev.Instance, []livedev.Value) (livedev.Value, error) {
				counter++
				return livedev.Int32(int32(counter)), nil
			},
		})
		return err
	}
	if err := addCount(soapClass); err != nil {
		return err
	}
	if err := addCount(corbaClass); err != nil {
		return err
	}
	// The stability timeout elapses; the publisher pushes new documents.
	soapSrv.Publisher().PublishNow()
	soapSrv.Publisher().WaitIdle()
	corbaSrv.Publisher().PublishNow()
	corbaSrv.Publisher().WaitIdle()

	for _, c := range []*livedev.Client{soapClient, corbaClient} {
		v, err := c.CallContext(ctx, "next")
		if err != nil {
			return fmt.Errorf("%s next(): %w", c.Technology(), err)
		}
		fmt.Printf("%s client: next() = %v\n", c.Technology(), v)
	}

	// Step 2: the client developer writes a call against a method that
	// does not exist yet — in live simultaneous development the client
	// side is often ahead of the server side.
	if _, err := soapClient.CallContext(ctx, "reset"); !errors.Is(err, livedev.ErrNoSuchStub) {
		return fmt.Errorf("expected no-such-stub, got %v", err)
	}
	fmt.Println("SOAP client: reset() has no stub yet (client developer is ahead)")

	// The server developer catches up.
	if _, err := soapClass.AddMethod(livedev.MethodSpec{
		Name:        "reset",
		Distributed: true,
		Body: func(*livedev.Instance, []livedev.Value) (livedev.Value, error) {
			return livedev.Void(), nil
		},
	}); err != nil {
		return err
	}
	soapSrv.Publisher().PublishNow()
	soapSrv.Publisher().WaitIdle()
	if _, err := soapClient.CallContext(ctx, "reset"); err != nil {
		return err
	}
	fmt.Println("SOAP client: reset() works after the server developer added it")

	// Step 3: a rename with an in-flight client call exercises the
	// Figure 8 recency guarantee; the debugger records the failure and
	// 'try again' resumes after the server developer reverts.
	id, _ := corbaClass.MethodIDByName("next")
	if err := corbaClass.RenameMethod(id, "advance"); err != nil {
		return err
	}
	_, err = corbaClient.CallContext(ctx, "next")
	var stale *livedev.StaleMethodError
	if !errors.As(err, &stale) {
		return fmt.Errorf("expected stale error, got %v", err)
	}
	fmt.Printf("CORBA client: next() is stale; refreshed view shows %q\n",
		corbaClient.Interface().Methods[0].Name)

	// The server developer decides the rename was a mistake and reverts
	// during the debugging session (the Section 6 edge case).
	if err := corbaClass.RenameMethod(id, "next"); err != nil {
		return err
	}
	corbaSrv.Publisher().PublishNow()
	corbaSrv.Publisher().WaitIdle()
	v, err := corbaClient.Debugger().TryAgainContext(ctx)
	if err != nil {
		return fmt.Errorf("try again: %w", err)
	}
	fmt.Printf("CORBA client: 'try again' resumed normal execution, next() = %v\n", v)

	// Final state: both publishers were exercised through regular and
	// forced paths.
	s1 := soapSrv.Publisher().Stats()
	s2 := corbaSrv.Publisher().Stats()
	fmt.Printf("SOAP publisher:  %d published, %d forced waits, %d no-op forces\n", s1.Published, s1.Forced, s1.ForcedNoop)
	fmt.Printf("CORBA publisher: %d published, %d forced waits, %d no-op forces\n", s2.Published, s2.Forced, s2.ForcedNoop)
	return nil
}
