// Quickstart: build a live SOAP server from a dynamic class, connect a
// live client, change the server's interface while both run, and watch the
// client recover through the paper's reactive-update protocol.
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"livedev"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Define a dynamic class with one distributed method. In JPie this
	// is the class editor with the 'distributed' modifier checked
	// (paper Figure 3); here it is an API call.
	calc := livedev.NewClass("Calc")
	addID, err := calc.AddMethod(livedev.MethodSpec{
		Name:        "add",
		Params:      []livedev.Param{{Name: "a", Type: livedev.Int32Type}, {Name: "b", Type: livedev.Int32Type}},
		Result:      livedev.Int32Type,
		Distributed: true,
		Body: func(_ *livedev.Instance, args []livedev.Value) (livedev.Value, error) {
			return livedev.Int32(args[0].Int32() + args[1].Int32()), nil
		},
	})
	if err != nil {
		return err
	}

	// 2. The SDE Manager automates deployment: registering the class
	// creates the WSDL generator, call handler and publisher, and
	// immediately publishes the interface description.
	mgr, err := livedev.NewManager(livedev.Config{Timeout: 100 * time.Millisecond})
	if err != nil {
		return err
	}
	defer func() { _ = mgr.Close() }()

	srv, err := mgr.Register(calc, livedev.TechSOAP)
	if err != nil {
		return err
	}
	if _, err := srv.CreateInstance(); err != nil {
		return err
	}
	fmt.Println("WSDL published at:", srv.InterfaceURL())

	// 3. A CDE client compiles the WSDL into live stubs. Dial sniffs the
	// document (a WSDL -> the SOAP binding); WithTimeout bounds every call
	// that carries no deadline of its own.
	ctx := context.Background()
	client, err := livedev.Dial(ctx, srv.InterfaceURL(),
		livedev.WithTimeout(5*time.Second))
	if err != nil {
		return err
	}
	defer func() { _ = client.Close() }()

	sum, err := client.CallContext(ctx, "add", livedev.Int32(20), livedev.Int32(22))
	if err != nil {
		return err
	}
	fmt.Println("add(20, 22) =", sum)

	// 4. Live development: rename the method while client and server are
	// both running and connected.
	if err := calc.RenameMethod(addID, "plus"); err != nil {
		return err
	}
	fmt.Println("server developer renamed add -> plus (server keeps running)")

	// 5. The client's next call with the old name triggers the paper's
	// Section 5.7 + Section 6 protocol: the server force-publishes the
	// current WSDL before faulting, and the client refreshes its view
	// before surfacing the error.
	_, err = client.CallContext(ctx, "add", livedev.Int32(1), livedev.Int32(2))
	if !errors.Is(err, livedev.ErrStaleMethod) {
		return fmt.Errorf("expected a stale-method error, got %v", err)
	}
	fmt.Println("stale call detected; client view refreshed:")
	for _, m := range client.Interface().Methods {
		fmt.Println("  ", m)
	}

	// 6. Normal execution resumes under the new name.
	sum, err = client.CallContext(ctx, "plus", livedev.Int32(20), livedev.Int32(22))
	if err != nil {
		return err
	}
	fmt.Println("plus(20, 22) =", sum)
	return nil
}
