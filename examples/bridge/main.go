// Bridge: the paper's future-work feature (Section 8) — interchange the
// communication technology while live development is taking place. A live
// CORBA inventory server is re-exported as a Web Service through the
// binding-agnostic bridge; a plain SOAP client consumes it; the server
// developer renames a method mid-session and the change propagates through
// the bridge with the recency guarantee intact.
//
// The backend client is dialed with the watch option, so the bridge's
// proxy class is resynchronized by push when the backend republishes —
// no polling anywhere on the path.
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"livedev"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bridge:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()

	// A CORBA inventory service under live development.
	inv := livedev.NewClass("Inventory")
	stock := map[string]int32{"widget": 12, "gadget": 3}
	lookupID, err := inv.AddMethod(livedev.MethodSpec{
		Name:        "lookup",
		Params:      []livedev.Param{{Name: "sku", Type: livedev.StringType}},
		Result:      livedev.Int32Type,
		Distributed: true,
		Body: func(_ *livedev.Instance, args []livedev.Value) (livedev.Value, error) {
			n, ok := stock[args[0].Str()]
			if !ok {
				return livedev.Value{}, fmt.Errorf("unknown sku %q", args[0].Str())
			}
			return livedev.Int32(n), nil
		},
	})
	if err != nil {
		return err
	}

	mgr, err := livedev.NewManager(livedev.Config{Timeout: 100 * time.Millisecond})
	if err != nil {
		return err
	}
	defer func() { _ = mgr.Close() }()
	srv, err := mgr.Register(inv, livedev.TechCORBA)
	if err != nil {
		return err
	}
	if _, err := srv.CreateInstance(); err != nil {
		return err
	}
	fmt.Println("CORBA inventory server up; IDL at", srv.InterfaceURL())

	// The bridge consumes the CORBA server through a watch-subscribed CDE
	// client and re-exports it as a Web Service under its own manager.
	backend, err := livedev.Dial(ctx, srv.InterfaceURL(), livedev.WithWatch(),
		livedev.WithTimeout(5*time.Second))
	if err != nil {
		return err
	}
	defer func() { _ = backend.Close() }()
	bridgeMgr, err := livedev.NewManager(livedev.Config{Timeout: 100 * time.Millisecond})
	if err != nil {
		return err
	}
	defer func() { _ = bridgeMgr.Close() }()
	front, err := livedev.ReExport(bridgeMgr, "InventoryWS", backend, livedev.TechSOAP)
	if err != nil {
		return err
	}
	defer func() { _ = front.Close() }()
	fmt.Println("SOAP bridge up; WSDL at", front.InterfaceURL())

	// A pure SOAP client — it has no idea CORBA is behind the curtain.
	webClient, err := livedev.Dial(ctx, front.InterfaceURL())
	if err != nil {
		return err
	}
	defer func() { _ = webClient.Close() }()

	n, err := webClient.CallContext(ctx, "lookup", livedev.Str("widget"))
	if err != nil {
		return err
	}
	fmt.Println("SOAP client: lookup(widget) =", n, " (served over IIOP behind the bridge)")

	// Live edit on the CORBA server while the SOAP client is attached.
	if err := inv.RenameMethod(lookupID, "stockOf"); err != nil {
		return err
	}
	srv.Publisher().PublishNow()
	srv.Publisher().WaitIdle()
	fmt.Println("server developer renamed lookup -> stockOf on the CORBA server")

	_, err = webClient.CallContext(ctx, "lookup", livedev.Str("widget"))
	if !errors.Is(err, livedev.ErrStaleMethod) {
		return fmt.Errorf("expected stale-method error through the bridge, got %v", err)
	}
	fmt.Println("SOAP client: stale call detected; bridged interface refreshed:")
	for _, m := range webClient.Interface().Methods {
		fmt.Println("  ", m)
	}

	n, err = webClient.CallContext(ctx, "stockOf", livedev.Str("gadget"))
	if err != nil {
		return err
	}
	fmt.Println("SOAP client: stockOf(gadget) =", n)
	return nil
}
