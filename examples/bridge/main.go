// Bridge: the paper's future-work feature (Section 8) — interchange the
// communication technology while live development is taking place. A live
// CORBA inventory server is fronted by a SOAP bridge; a plain SOAP client
// consumes it; the server developer renames a method mid-session and the
// change propagates through the bridge with the recency guarantee intact.
//
// This example deliberately stays on the v1 API (ConnectSOAP, context-free
// Call), doubling as compile-time coverage for the deprecated shims; see
// examples/quickstart for the v2 Dial/CallContext style.
package main

import (
	"errors"
	"fmt"
	"os"
	"time"

	"livedev"
	"livedev/internal/bridge"
	"livedev/internal/cde"
	"livedev/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bridge:", err)
		os.Exit(1)
	}
}

func run() error {
	// A CORBA inventory service under live development.
	inv := livedev.NewClass("Inventory")
	stock := map[string]int32{"widget": 12, "gadget": 3}
	lookupID, err := inv.AddMethod(livedev.MethodSpec{
		Name:        "lookup",
		Params:      []livedev.Param{{Name: "sku", Type: livedev.StringType}},
		Result:      livedev.Int32Type,
		Distributed: true,
		Body: func(_ *livedev.Instance, args []livedev.Value) (livedev.Value, error) {
			n, ok := stock[args[0].Str()]
			if !ok {
				return livedev.Value{}, fmt.Errorf("unknown sku %q", args[0].Str())
			}
			return livedev.Int32(n), nil
		},
	})
	if err != nil {
		return err
	}

	mgr, err := livedev.NewManager(livedev.Config{Timeout: 100 * time.Millisecond})
	if err != nil {
		return err
	}
	defer func() { _ = mgr.Close() }()
	srv, err := mgr.Register(inv, livedev.TechCORBA)
	if err != nil {
		return err
	}
	if _, err := srv.CreateInstance(); err != nil {
		return err
	}
	cs := srv.(*core.CORBAServer)
	fmt.Println("CORBA inventory server up; IDL at", cs.InterfaceURL())

	// The bridge consumes the CORBA server through a CDE client and
	// fronts it as a Web Service with a derived, live WSDL.
	backend, err := cde.NewCORBAClient(cs.InterfaceURL(), cs.IORURL(), nil)
	if err != nil {
		return err
	}
	defer func() { _ = backend.Close() }()
	front := bridge.NewSOAPFront("InventoryWS", backend)
	if err := front.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		return err
	}
	defer func() { _ = front.Close() }()
	fmt.Println("SOAP bridge up; WSDL at", front.WSDLURL())

	// A pure SOAP client — it has no idea CORBA is behind the curtain.
	webClient, err := livedev.ConnectSOAP(front.WSDLURL())
	if err != nil {
		return err
	}
	defer func() { _ = webClient.Close() }()

	n, err := webClient.Call("lookup", livedev.Str("widget"))
	if err != nil {
		return err
	}
	fmt.Println("SOAP client: lookup(widget) =", n, " (served over IIOP behind the bridge)")

	// Live edit on the CORBA server while the SOAP client is attached.
	if err := inv.RenameMethod(lookupID, "stockOf"); err != nil {
		return err
	}
	srv.Publisher().PublishNow()
	srv.Publisher().WaitIdle()
	fmt.Println("server developer renamed lookup -> stockOf on the CORBA server")

	_, err = webClient.Call("lookup", livedev.Str("widget"))
	if !errors.Is(err, livedev.ErrStaleMethod) {
		return fmt.Errorf("expected stale-method error through the bridge, got %v", err)
	}
	fmt.Println("SOAP client: stale call detected; bridged interface refreshed:")
	for _, m := range webClient.Interface().Methods {
		fmt.Println("  ", m)
	}

	n, err = webClient.Call("stockOf", livedev.Str("gadget"))
	if err != nil {
		return err
	}
	fmt.Println("SOAP client: stockOf(gadget) =", n)
	return nil
}
