// Command sde-director fronts a replicated watch plane: given the base
// URLs of a leader sde-server and its -follow replicas, it health-checks
// them, publishes the current replica set at /.replicas (endpoint-aware
// clients — livedev.WithDirector — fetch it once and fail over
// client-side), and spreads endpoint-oblivious watchers by answering
// every other GET with a 307 redirect to the next healthy replica
// round-robin. Non-GET requests are misdirected (421) to the leader.
//
// Usage:
//
//	sde-director -endpoints http://leader:1234,http://replica:1235[,...]
//	             [-addr ADDR] [-interval D]
//
// The first endpoint is assumed to be the leader until a health check
// (the replica's /.stats Replication block) says otherwise. See
// docs/replication.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"livedev/internal/repl"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:0", "director listen address")
	endpoints := flag.String("endpoints", "", "comma-separated replica base URLs (leader first)")
	interval := flag.Duration("interval", repl.DefaultHealthInterval, "replica health-check cadence")
	flag.Parse()

	var eps []string
	for _, ep := range strings.Split(*endpoints, ",") {
		if ep = strings.TrimSpace(strings.TrimSuffix(ep, "/")); ep != "" {
			eps = append(eps, ep)
		}
	}
	if len(eps) == 0 {
		fmt.Fprintln(os.Stderr, "sde-director: -endpoints is required (comma-separated replica base URLs)")
		return 2
	}

	d := repl.NewDirector(repl.DirectorConfig{Endpoints: eps, Interval: *interval})
	base, err := d.Start(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sde-director:", err)
		return 1
	}
	defer func() { _ = d.Close() }()

	fmt.Println("SDE director running")
	fmt.Println("  serving:  ", base)
	fmt.Println("  replicas: ", strings.Join(eps, ", "))
	fmt.Printf("  replica set at %s%s, health checks every %v\n", base, repl.ReplicasPath, *interval)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	statsSig := make(chan os.Signal, 1)
	signal.Notify(statsSig, syscall.SIGQUIT)
	for {
		select {
		case <-stop:
			fmt.Println("\nshutting down")
			return 0
		case <-statsSig:
			for _, r := range d.Replicas().Endpoints {
				fmt.Printf("  %-8s healthy=%-5v %s\n", r.Role, r.Healthy, r.URL)
			}
		}
	}
}
