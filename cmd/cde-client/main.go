// Command cde-client is a live CDE client: it compiles the published
// interface description of a running SDE (or static) server, lists the
// interface, and can invoke methods with arguments given on the command
// line. On a "Non Existent Method" reply it shows the reactive update the
// CDE performed — the Figure 9 experience in terminal form.
//
// Usage:
//
//	cde-client -url URL [-binding NAME] [-timeout D] [-watch] [-parallel N]  [method arg...]
//	cde-client -wsdl URL                              [method arg...]
//	cde-client -idl URL -ior URL                      [method arg...]
//
// -url is the v2 entry point: any registered binding's interface-document
// URL (WSDL, CORBA-IDL, IOR, JSON, h2b). The binding is sniffed from the
// document, or forced with -binding. -timeout bounds each call. The -wsdl
// and -idl/-ior forms remain for compatibility.
//
// -parallel N issues the call N times concurrently instead of once — an
// ad-hoc smoke run of a binding's concurrent-call path (for the h2b
// binding, N calls multiplex as N streams on one TCP connection). The
// wall-clock for the batch and any per-call errors are reported.
//
// Arguments are parsed against the method's current signature: int32/int64
// as decimal, float32/float64 as decimal floats, booleans as true/false,
// chars as single characters, everything else as strings.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"sync"
	"time"

	"livedev"
	"livedev/internal/cde"
	"livedev/internal/dyn"
	"livedev/internal/h2b"
	"livedev/internal/jsonb"
)

func main() {
	os.Exit(run())
}

func run() int {
	url := flag.String("url", "", "interface-document URL of any registered binding")
	binding := flag.String("binding", "", "force a binding name instead of sniffing the document")
	timeout := flag.Duration("timeout", 0, "per-call timeout (0 = none)")
	watch := flag.Bool("watch", false, "subscribe to push-based interface updates (SSE stream, long-poll fallback)")
	parallel := flag.Int("parallel", 1, "issue the call N times concurrently (concurrent-call smoke run)")
	wsdlURL := flag.String("wsdl", "", "WSDL document URL (SOAP mode)")
	idlURL := flag.String("idl", "", "CORBA-IDL document URL (CORBA mode)")
	iorURL := flag.String("ior", "", "stringified IOR URL (CORBA mode)")
	flag.Parse()

	livedev.RegisterBinding(jsonb.New())
	livedev.RegisterBinding(h2b.New())

	ctx := context.Background()
	var client *cde.Client
	var err error
	switch {
	case *url != "":
		opts := []livedev.Option{livedev.WithTimeout(*timeout)}
		if *watch {
			opts = append(opts, livedev.WithWatch())
		}
		if *binding != "" {
			opts = append(opts, livedev.WithBinding(*binding))
		}
		if *iorURL != "" {
			opts = append(opts, livedev.WithAuxURL(*iorURL))
		}
		client, err = livedev.Dial(ctx, *url, opts...)
	case *wsdlURL != "":
		client, err = livedev.Dial(ctx, *wsdlURL,
			livedev.WithBinding("SOAP"), livedev.WithTimeout(*timeout))
	case *idlURL != "" && *iorURL != "":
		client, err = livedev.Dial(ctx, *idlURL,
			livedev.WithBinding("CORBA"), livedev.WithAuxURL(*iorURL), livedev.WithTimeout(*timeout))
	default:
		fmt.Fprintln(os.Stderr, "cde-client: need -url URL (v2), -wsdl URL, or -idl URL and -ior URL")
		return 2
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cde-client:", err)
		return 1
	}
	defer func() { _ = client.Close() }()

	iface := client.Interface()
	fmt.Printf("connected over %s; server interface (%d methods):\n", client.Technology(), len(iface.Methods))
	for _, m := range iface.Methods {
		fmt.Println("  ", m)
	}

	args := flag.Args()
	if len(args) == 0 {
		return 0
	}
	method := args[0]
	sig, ok := iface.Lookup(method)
	if !ok {
		fmt.Fprintf(os.Stderr, "cde-client: method %s is not on the current interface\n", method)
		return 1
	}
	if len(args)-1 != len(sig.Params) {
		fmt.Fprintf(os.Stderr, "cde-client: %s takes %d arguments, got %d\n", method, len(sig.Params), len(args)-1)
		return 2
	}
	vals := make([]dyn.Value, len(sig.Params))
	for i, p := range sig.Params {
		v, err := parseArg(args[1+i], p.Type)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cde-client: argument %s: %v\n", p.Name, err)
			return 2
		}
		vals[i] = v
	}

	if *parallel > 1 {
		return runParallel(ctx, client, method, vals, *parallel)
	}

	result, err := client.CallContext(ctx, method, vals...)
	if err != nil {
		var stale *cde.StaleMethodError
		if errors.As(err, &stale) {
			fmt.Printf("server says %q is stale; interface view refreshed to descriptor version %d:\n",
				method, stale.RefreshedDescriptorVersion)
			for _, m := range client.Interface().Methods {
				fmt.Println("  ", m)
			}
			return 1
		}
		fmt.Fprintln(os.Stderr, "cde-client:", err)
		return 1
	}
	fmt.Println(result)
	if *watch {
		st := client.Stats()
		fmt.Printf("watch stats: %d stream events (%d replayed, %d reconnects), %d watch updates, %d refreshes\n",
			st.StreamEvents, st.Replays, st.Reconnects, st.WatchUpdates, st.Refreshes)
	}
	return 0
}

// runParallel issues the same call n times concurrently and reports the
// batch wall-clock plus any per-call failures — a smoke run of the
// binding's concurrent-call path (one multiplexed connection under h2b,
// pooled connections elsewhere).
func runParallel(ctx context.Context, client *cde.Client, method string, vals []dyn.Value, n int) int {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstVal dyn.Value
		gotFirst bool
		errs     []error
	)
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := client.CallContext(ctx, method, vals...)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, err)
				return
			}
			if !gotFirst {
				firstVal, gotFirst = v, true
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	if gotFirst {
		fmt.Println(firstVal)
	}
	fmt.Printf("%d concurrent calls in %v (%.0f calls/s), %d failed\n",
		n, elapsed, float64(n)/elapsed.Seconds(), len(errs))
	for i, err := range errs {
		if i == 3 {
			fmt.Fprintf(os.Stderr, "cde-client: ... and %d more errors\n", len(errs)-i)
			break
		}
		fmt.Fprintln(os.Stderr, "cde-client:", err)
	}
	if len(errs) > 0 {
		return 1
	}
	return 0
}

func parseArg(s string, t *dyn.Type) (dyn.Value, error) {
	switch t.Kind() {
	case dyn.KindBoolean:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return dyn.Value{}, err
		}
		return dyn.BoolValue(b), nil
	case dyn.KindChar:
		r := []rune(s)
		if len(r) != 1 {
			return dyn.Value{}, fmt.Errorf("char argument must be one character")
		}
		return dyn.CharValue(r[0]), nil
	case dyn.KindInt32:
		i, err := strconv.ParseInt(s, 10, 32)
		if err != nil {
			return dyn.Value{}, err
		}
		return dyn.Int32Value(int32(i)), nil
	case dyn.KindInt64:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return dyn.Value{}, err
		}
		return dyn.Int64Value(i), nil
	case dyn.KindFloat32:
		f, err := strconv.ParseFloat(s, 32)
		if err != nil {
			return dyn.Value{}, err
		}
		return dyn.Float32Value(float32(f)), nil
	case dyn.KindFloat64:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return dyn.Value{}, err
		}
		return dyn.Float64Value(f), nil
	case dyn.KindString:
		return dyn.StringValue(s), nil
	default:
		return dyn.Value{}, fmt.Errorf("cannot parse %s arguments from the command line", t)
	}
}
