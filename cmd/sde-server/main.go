// Command sde-server runs a live SDE server: it registers calculator
// classes with the SOAP, CORBA, JSON, and h2b (multiplexed binary)
// subsystems, prints the published interface URLs, and (with -live) keeps
// mutating the server interface the way a developer editing the class
// would, so connected cde-client processes can observe live updates and
// stale-call recovery.
//
// Usage:
//
//	sde-server [-iface ADDR] [-soap ADDR] [-timeout D] [-data-dir DIR]
//	           [-sync none|group|always] [-shards K] [-live] [-duration D]
//	           [-max-watcher-lag N] [-watch-write-timeout D] [-follow URL]
//	           [-drain-timeout D]
//
// SIGTERM and SIGINT drain before exiting: registrations and new HTTP
// connections are refused, in-flight calls run to completion (bounded by
// -drain-timeout), held watch streams end with a terminal draining event
// so clients reconnect to another replica, and the WAL is flushed. See
// docs/ops.md.
//
// With -data-dir the publication store is durable (snapshot + WAL): a
// restarted sde-server resumes its epoch sequence, so watch clients ride
// journal replay across the restart instead of refetching snapshots.
// -sync picks the durability of the publication ack (group = group-commit
// fsync) and -shards the WAL/snapshot shard count. -max-watcher-lag and
// -watch-write-timeout are the watch-stream backpressure valves: a
// streaming watcher pending more than N events, or unable to absorb a
// write within D, is evicted with a terminal event and reconnects
// through ordinary replay. SIGQUIT dumps the store's counters — the
// durability, replication, and watch fan-out blocks included — without
// stopping the server.
//
// With -follow the process is a read-only replica instead: no classes are
// registered; the leader's write-ahead log is tailed and the replicated
// documents (GETs, long-polls, SSE watch streams) are served under the
// leader's restart generation, publications answered with 421 naming the
// leader. Combine with -data-dir so a restarted replica resumes tailing
// from its durable position. See docs/replication.md.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"livedev/internal/core"
	"livedev/internal/dyn"
	"livedev/internal/h2b"
	"livedev/internal/jsonb"
)

func main() {
	os.Exit(run())
}

func run() int {
	ifaceAddr := flag.String("iface", "127.0.0.1:0", "interface-server listen address")
	httpAddr := flag.String("http", "", "HTTP endpoint listen address (SOAP/JSON handlers)")
	soapAddr := flag.String("soap", "127.0.0.1:0", "former name of -http, honored when -http is unset")
	corbaAddr := flag.String("corba", "127.0.0.1:0", "CORBA endpoint listen address")
	timeout := flag.Duration("timeout", 500*time.Millisecond, "publication stability timeout (Section 5.6)")
	flushWindow := flag.Duration("flush-window", 0, "publication-store coalescing window (0 = commit immediately)")
	historyLen := flag.Int("history-len", 0, "publication-store replay journal capacity (0 = default, negative disables)")
	dataDir := flag.String("data-dir", "", "durable publication-store directory (snapshot + WAL; empty = in-memory)")
	syncMode := flag.String("sync", "", "durable-store sync policy: none, group (ack after group-commit fsync), or always (empty = store default)")
	shards := flag.Int("shards", 0, "durable-store WAL/snapshot shard count (0 = store default)")
	maxLag := flag.Int("max-watcher-lag", 0, "evict a streaming watcher pending more than this many events (0 = unbounded)")
	watchWriteTimeout := flag.Duration("watch-write-timeout", 0, "per-write deadline on held watch streams (0 = default, negative disables)")
	live := flag.Bool("live", false, "keep editing the server interface live")
	duration := flag.Duration("duration", 0, "exit after this long (0 = run until interrupted)")
	follow := flag.String("follow", "", "run as a read-only replica of the leader interface server at this base URL")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-drain deadline on SIGTERM/SIGINT (held streams get a terminal draining event)")
	flag.Parse()

	var syncPolicy core.SyncPolicy
	if *syncMode != "" {
		var err error
		if syncPolicy, err = core.ParseSyncPolicy(*syncMode); err != nil {
			fmt.Fprintln(os.Stderr, "sde-server:", err)
			return 2
		}
	}

	core.RegisterBinding(jsonb.New())
	core.RegisterBinding(h2b.New())

	mgr, err := core.NewManager(core.Config{
		InterfaceAddr:     *ifaceAddr,
		HTTPAddr:          *httpAddr,
		SOAPAddr:          *soapAddr, // honored when -http is unset (Config alias rule)
		CORBAAddr:         *corbaAddr,
		Timeout:           *timeout,
		FlushWindow:       *flushWindow,
		HistoryLen:        *historyLen,
		DataDir:           *dataDir,
		Sync:              syncPolicy,
		WALShards:         *shards,
		FollowURL:         *follow,
		MaxWatcherLag:     *maxLag,
		WatchWriteTimeout: *watchWriteTimeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sde-server:", err)
		return 1
	}
	defer func() { _ = mgr.Close() }()

	if *follow != "" {
		return runFollower(mgr, *duration, *drainTimeout)
	}

	class := dyn.NewClass("Calc")
	addID, err := class.AddMethod(dyn.MethodSpec{
		Name:        "add",
		Params:      []dyn.Param{{Name: "a", Type: dyn.Int32T}, {Name: "b", Type: dyn.Int32T}},
		Result:      dyn.Int32T,
		Distributed: true,
		Body: func(_ *dyn.Instance, args []dyn.Value) (dyn.Value, error) {
			return dyn.Int32Value(args[0].Int32() + args[1].Int32()), nil
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sde-server:", err)
		return 1
	}
	if _, err := class.AddMethod(dyn.MethodSpec{
		Name:        "greet",
		Params:      []dyn.Param{{Name: "name", Type: dyn.StringT}},
		Result:      dyn.StringT,
		Distributed: true,
		Body: func(_ *dyn.Instance, args []dyn.Value) (dyn.Value, error) {
			return dyn.StringValue("hello, " + args[0].Str()), nil
		},
	}); err != nil {
		fmt.Fprintln(os.Stderr, "sde-server:", err)
		return 1
	}

	soapSrv, err := mgr.Register(class, core.TechSOAP)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sde-server:", err)
		return 1
	}
	if _, err := soapSrv.CreateInstance(); err != nil {
		fmt.Fprintln(os.Stderr, "sde-server:", err)
		return 1
	}

	// A second class serves the same logic over CORBA (one manager slot
	// per class).
	corbaClass := dyn.NewClass("CalcCorba")
	if _, err := corbaClass.AddMethod(dyn.MethodSpec{
		Name:        "add",
		Params:      []dyn.Param{{Name: "a", Type: dyn.Int32T}, {Name: "b", Type: dyn.Int32T}},
		Result:      dyn.Int32T,
		Distributed: true,
		Body: func(_ *dyn.Instance, args []dyn.Value) (dyn.Value, error) {
			return dyn.Int32Value(args[0].Int32() + args[1].Int32()), nil
		},
	}); err != nil {
		fmt.Fprintln(os.Stderr, "sde-server:", err)
		return 1
	}
	corbaSrv, err := mgr.Register(corbaClass, core.TechCORBA)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sde-server:", err)
		return 1
	}
	if _, err := corbaSrv.CreateInstance(); err != nil {
		fmt.Fprintln(os.Stderr, "sde-server:", err)
		return 1
	}
	cs := corbaSrv.(*core.CORBAServer)

	// A third class serves the same logic over the JSON binding, which is
	// wired in through the registry — the server loop below treats it like
	// the built-in pair.
	jsonClass := dyn.NewClass("CalcJSON")
	if _, err := jsonClass.AddMethod(dyn.MethodSpec{
		Name:        "add",
		Params:      []dyn.Param{{Name: "a", Type: dyn.Int32T}, {Name: "b", Type: dyn.Int32T}},
		Result:      dyn.Int32T,
		Distributed: true,
		Body: func(_ *dyn.Instance, args []dyn.Value) (dyn.Value, error) {
			return dyn.Int32Value(args[0].Int32() + args[1].Int32()), nil
		},
	}); err != nil {
		fmt.Fprintln(os.Stderr, "sde-server:", err)
		return 1
	}
	jsonSrv, err := mgr.Register(jsonClass, core.Technology(jsonb.Name))
	if err != nil {
		fmt.Fprintln(os.Stderr, "sde-server:", err)
		return 1
	}
	if _, err := jsonSrv.CreateInstance(); err != nil {
		fmt.Fprintln(os.Stderr, "sde-server:", err)
		return 1
	}

	// A fourth class serves the same logic over the multiplexed binary
	// binding (CDR bodies over HTTP/2 streams) — the high-concurrency
	// counterpart of the JSON class.
	h2bClass := dyn.NewClass("CalcH2B")
	if _, err := h2bClass.AddMethod(dyn.MethodSpec{
		Name:        "add",
		Params:      []dyn.Param{{Name: "a", Type: dyn.Int32T}, {Name: "b", Type: dyn.Int32T}},
		Result:      dyn.Int32T,
		Distributed: true,
		Body: func(_ *dyn.Instance, args []dyn.Value) (dyn.Value, error) {
			return dyn.Int32Value(args[0].Int32() + args[1].Int32()), nil
		},
	}); err != nil {
		fmt.Fprintln(os.Stderr, "sde-server:", err)
		return 1
	}
	h2bSrv, err := mgr.Register(h2bClass, core.Technology(h2b.Name))
	if err != nil {
		fmt.Fprintln(os.Stderr, "sde-server:", err)
		return 1
	}
	if _, err := h2bSrv.CreateInstance(); err != nil {
		fmt.Fprintln(os.Stderr, "sde-server:", err)
		return 1
	}
	hs := h2bSrv.(*h2b.Server)

	fmt.Println("SDE server running")
	if *dataDir != "" {
		fmt.Printf("  data dir: %s (store generation %d, epoch %d)\n",
			*dataDir, mgr.Store().Generation(), mgr.Store().Epoch())
		if d := mgr.Store().Stats().Durability; d != nil {
			fmt.Printf("  durability: sync=%s shards=%d (SIGQUIT dumps store stats)\n",
				d.Policy, d.Shards)
		}
	}
	fmt.Println("  WSDL:", soapSrv.InterfaceURL())
	fmt.Println("  SOAP endpoint:", soapSrv.(*core.SOAPServer).Endpoint())
	fmt.Println("  IDL: ", cs.InterfaceURL())
	fmt.Println("  IOR: ", cs.IORURL())
	fmt.Println("  JSON doc:", jsonSrv.InterfaceURL())
	fmt.Println("  JSON endpoint:", jsonSrv.(*jsonb.Server).Endpoint())
	fmt.Println("  H2B doc: ", hs.InterfaceURL())
	fmt.Println("  H2B endpoint:", hs.Endpoint(), "(mux", hs.MuxAddr()+")")

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	// SIGQUIT dumps the publication store's counters (including the
	// durability block: per-shard lsns, fsyncs, group-commit batch sizes)
	// without stopping the server — the live-ops view of -sync.
	statsSig := make(chan os.Signal, 1)
	signal.Notify(statsSig, syscall.SIGQUIT)

	var deadline <-chan time.Time
	if *duration > 0 {
		deadline = time.After(*duration)
	}

	ticker := time.NewTicker(2 * time.Second)
	defer ticker.Stop()
	step := 0
	for {
		select {
		case <-stop:
			return drainAndExit(mgr, *drainTimeout)
		case <-statsSig:
			data, err := json.MarshalIndent(mgr.Store().Stats(), "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, "sde-server: stats:", err)
				continue
			}
			fmt.Printf("store stats:\n%s\n", data)
		case <-deadline:
			return 0
		case <-ticker.C:
			if !*live {
				continue
			}
			// A developer editing the class: rename add back and forth and
			// evolve greet's behaviour.
			step++
			var err error
			if step%2 == 1 {
				err = class.RenameMethod(addID, "plus")
			} else {
				err = class.RenameMethod(addID, "add")
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "live edit:", err)
				continue
			}
			fmt.Printf("live edit %d applied; interface version now %d (publishes after %v of stability)\n",
				step, class.InterfaceVersion(), *timeout)
			if !strings.Contains(os.Getenv("SDE_QUIET"), "1") {
				st := soapSrv.Publisher().Stats()
				fmt.Printf("  publisher: %d published, %d skipped, %d forced\n",
					st.Published, st.SkippedCurrent, st.Forced)
			}
		}
	}
}

// drainAndExit is the signal path: drain gracefully — stop accepting new
// work, finish in-flight calls, end held watch streams with a terminal
// draining event so clients reconnect elsewhere, flush the WAL — then stop.
func drainAndExit(mgr *core.Manager, drainTimeout time.Duration) int {
	fmt.Println("\ndraining (in-flight calls finish, held streams get a terminal event)")
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := mgr.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "sde-server: drain:", err)
	}
	if err := mgr.Stop(); err != nil {
		fmt.Fprintln(os.Stderr, "sde-server: stop:", err)
		return 1
	}
	fmt.Println("shut down cleanly")
	return 0
}

// runFollower is the -follow main loop: print the replica's identity,
// dump replication stats on SIGQUIT, run until interrupted.
func runFollower(mgr *core.Manager, duration, drainTimeout time.Duration) int {
	f := mgr.Follower()
	fmt.Println("SDE replica running (read-only)")
	fmt.Println("  leader:   ", f.Leader())
	fmt.Println("  serving:  ", mgr.InterfaceBaseURL())
	fmt.Printf("  generation %d, replication lag %d records (SIGQUIT dumps store stats)\n",
		f.Generation(), f.Lag())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	statsSig := make(chan os.Signal, 1)
	signal.Notify(statsSig, syscall.SIGQUIT)

	var deadline <-chan time.Time
	if duration > 0 {
		deadline = time.After(duration)
	}
	for {
		select {
		case <-stop:
			return drainAndExit(mgr, drainTimeout)
		case <-deadline:
			return 0
		case <-statsSig:
			data, err := json.MarshalIndent(mgr.Store().Stats(), "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, "sde-server: stats:", err)
				continue
			}
			fmt.Printf("store stats:\n%s\n", data)
		}
	}
}
