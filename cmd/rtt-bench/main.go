// Command rtt-bench regenerates the paper's Table 1: mean round-trip time
// of RMI calls for SDE and static servers over SOAP and CORBA, plus the
// allocation profile of each configuration.
//
// Besides the human-readable table it writes a machine-readable
// BENCH_rtt.json (ns/op, B/op, allocs/op per Table 1 row) so the perf
// trajectory of the invocation hot path can be tracked PR over PR.
//
// Usage:
//
//	rtt-bench [-calls N] [-payload BYTES] [-json PATH]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"livedev/internal/experiments"
)

// benchRow is one Table 1 row in the JSON artifact, in go-bench units.
type benchRow struct {
	Config      string  `json:"config"`
	PaperRTTMs  float64 `json:"paper_rtt_ms"`
	NsPerOp     float64 `json:"ns_op"`
	P50Ns       float64 `json:"p50_ns"`
	BytesPerOp  float64 `json:"b_op"`
	AllocsPerOp float64 `json:"allocs_op"`
	N           int     `json:"n"`
}

type benchFile struct {
	Schema  string     `json:"schema"`
	Command string     `json:"command"`
	Calls   int        `json:"calls"`
	Payload int        `json:"payload_bytes"`
	Rows    []benchRow `json:"rows"`
}

func main() {
	os.Exit(run())
}

func run() int {
	calls := flag.Int("calls", 100, "RMI calls per configuration (the paper used 100)")
	payload := flag.Int("payload", 64, "echoed string payload size in bytes")
	jsonPath := flag.String("json", "BENCH_rtt.json", "path for the machine-readable results (empty disables)")
	flag.Parse()

	rows, err := experiments.RunTable1(experiments.Table1Config{
		Calls:        *calls,
		PayloadBytes: *payload,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtt-bench:", err)
		return 1
	}
	fmt.Print(experiments.FormatTable1(rows))

	if *jsonPath != "" {
		out := benchFile{
			Schema:  "livedev/rtt-bench/v1",
			Command: "rtt-bench",
			Calls:   *calls,
			Payload: *payload,
		}
		for _, r := range rows {
			out.Rows = append(out.Rows, benchRow{
				Config:      r.Config,
				PaperRTTMs:  float64(r.PaperRTT.Milliseconds()),
				NsPerOp:     float64(r.Measured.Mean.Nanoseconds()),
				P50Ns:       float64(r.Measured.P50.Nanoseconds()),
				BytesPerOp:  r.BytesPerOp,
				AllocsPerOp: r.AllocsPerOp,
				N:           r.Measured.N,
			})
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "rtt-bench: encoding json:", err)
			return 1
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "rtt-bench: writing json:", err)
			return 1
		}
		fmt.Printf("\nwrote %s\n", *jsonPath)
	}
	return 0
}
