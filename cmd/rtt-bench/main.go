// Command rtt-bench regenerates the paper's Table 1: mean round-trip time
// of RMI calls for SDE and static servers over SOAP and CORBA, plus the
// allocation profile of each configuration — and, since the event-driven
// publication core, the refresh-after-edit latency rows comparing a
// polling client against a watch-subscribed one (push-invalidated cache).
//
// Besides the human-readable tables it writes a machine-readable
// BENCH_rtt.json (ns/op, B/op, allocs/op per Table 1 row; mean/p50 per
// refresh row) so the perf trajectory of the invocation hot path and the
// publication path can be tracked PR over PR.
//
// Usage:
//
//	rtt-bench [-calls N] [-payload BYTES] [-refresh-rounds N] [-poll D] [-json PATH]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"livedev/internal/experiments"
)

// benchRow is one Table 1 row in the JSON artifact, in go-bench units.
type benchRow struct {
	Config      string  `json:"config"`
	PaperRTTMs  float64 `json:"paper_rtt_ms"`
	NsPerOp     float64 `json:"ns_op"`
	P50Ns       float64 `json:"p50_ns"`
	BytesPerOp  float64 `json:"b_op"`
	AllocsPerOp float64 `json:"allocs_op"`
	N           int     `json:"n"`
}

// refreshRow is one refresh-after-edit latency row in the JSON artifact.
type refreshRow struct {
	Mode   string  `json:"mode"`
	Rounds int     `json:"rounds"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  float64 `json:"p50_ns"`
}

type benchFile struct {
	Schema      string       `json:"schema"`
	Command     string       `json:"command"`
	Calls       int          `json:"calls"`
	Payload     int          `json:"payload_bytes"`
	Rows        []benchRow   `json:"rows"`
	RefreshRows []refreshRow `json:"refresh_rows,omitempty"`
}

func main() {
	os.Exit(run())
}

func run() int {
	calls := flag.Int("calls", 100, "RMI calls per configuration (the paper used 100)")
	payload := flag.Int("payload", 64, "echoed string payload size in bytes")
	refreshRounds := flag.Int("refresh-rounds", 12, "refresh-after-edit rounds per client strategy (0 disables)")
	pollInterval := flag.Duration("poll", 50*time.Millisecond, "polling client's refresh interval for the refresh rows")
	jsonPath := flag.String("json", "BENCH_rtt.json", "path for the machine-readable results (empty disables)")
	flag.Parse()

	rows, err := experiments.RunTable1(experiments.Table1Config{
		Calls:        *calls,
		PayloadBytes: *payload,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtt-bench:", err)
		return 1
	}
	fmt.Print(experiments.FormatTable1(rows))

	var refreshRows []experiments.RefreshRow
	if *refreshRounds > 0 {
		refreshRows, err = experiments.RunRefreshLatency(experiments.RefreshConfig{
			Rounds:       *refreshRounds,
			PollInterval: *pollInterval,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "rtt-bench:", err)
			return 1
		}
		fmt.Println()
		fmt.Print(experiments.FormatRefresh(refreshRows))
	}

	if *jsonPath != "" {
		out := benchFile{
			Schema:  "livedev/rtt-bench/v2",
			Command: "rtt-bench",
			Calls:   *calls,
			Payload: *payload,
		}
		for _, r := range rows {
			out.Rows = append(out.Rows, benchRow{
				Config:      r.Config,
				PaperRTTMs:  float64(r.PaperRTT.Milliseconds()),
				NsPerOp:     float64(r.Measured.Mean.Nanoseconds()),
				P50Ns:       float64(r.Measured.P50.Nanoseconds()),
				BytesPerOp:  r.BytesPerOp,
				AllocsPerOp: r.AllocsPerOp,
				N:           r.Measured.N,
			})
		}
		for _, r := range refreshRows {
			out.RefreshRows = append(out.RefreshRows, refreshRow{
				Mode:   r.Mode,
				Rounds: r.Rounds,
				MeanNs: float64(r.Mean.Nanoseconds()),
				P50Ns:  float64(r.P50.Nanoseconds()),
			})
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "rtt-bench: encoding json:", err)
			return 1
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "rtt-bench: writing json:", err)
			return 1
		}
		fmt.Printf("\nwrote %s\n", *jsonPath)
	}
	return 0
}
