// Command rtt-bench regenerates the paper's Table 1: mean round-trip time
// of RMI calls for SDE and static servers over SOAP and CORBA.
//
// Usage:
//
//	rtt-bench [-calls N] [-payload BYTES]
package main

import (
	"flag"
	"fmt"
	"os"

	"livedev/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	calls := flag.Int("calls", 100, "RMI calls per configuration (the paper used 100)")
	payload := flag.Int("payload", 64, "echoed string payload size in bytes")
	flag.Parse()

	rows, err := experiments.RunTable1(experiments.Table1Config{
		Calls:        *calls,
		PayloadBytes: *payload,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtt-bench:", err)
		return 1
	}
	fmt.Print(experiments.FormatTable1(rows))
	return 0
}
