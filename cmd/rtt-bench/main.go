// Command rtt-bench regenerates the paper's Table 1: mean round-trip time
// of RMI calls for SDE and static servers over SOAP and CORBA, plus the
// allocation profile of each configuration — and, since the event-driven
// publication core, the refresh-after-edit latency rows comparing a
// polling client against a watch-subscribed one (push-invalidated cache) —
// and, since the streaming watch plane, the watcher fan-out rows: edit→
// all-notified latency across N concurrent watchers for the poll,
// long-poll, and stream transports.
//
// Besides the human-readable tables it writes a machine-readable
// BENCH_rtt.json (ns/op, B/op, allocs/op per Table 1 row; mean/p50 per
// refresh and fan-out row) so the perf trajectory of the invocation hot
// path and the publication path can be tracked PR over PR; CI diffs each
// fresh run against the committed baseline (cmd/benchdiff).
//
// With -parallel N it also measures the four SDE bindings under N
// concurrent callers each — throughput rows (wall-clock over total calls)
// that reward call multiplexing, landing in the artifact's parallel_rows
// section and gated hard by benchdiff like the serial rows.
//
// Usage:
//
//	rtt-bench [-calls N] [-payload BYTES] [-parallel N] [-refresh-rounds N] [-poll D]
//	          [-fanout-watchers 1,100,1000] [-fanout-edits N] [-fanout-poll D]
//	          [-fanout-payload BYTES] [-fanout-stall] [-fanout-stall-watchers N]
//	          [-fanout-stall-edits N] [-fanout-stall-payload BYTES]
//	          [-restart] [-restart-watchers N] [-durability] [-json PATH]
//	          [-replicas 1,2,4] [-replica-watchers N] [-replica-edits N]
//
// Fan-out sizes past a couple thousand watchers move the serving store to
// a re-exec'd child process (fd limits; honest scheduling) and run the
// stream transport only. With -fanout-stall it also measures backpressure
// isolation: the same N-watcher stream population once alone
// ("stream-base") and once sharing the server with a stalled client that
// never reads its socket ("stream-stall") — the delivery-pump fan-out
// keeps the two rows indistinguishable where a push-per-commit loop
// would have dragged every healthy watcher behind the stalled one.
//
// With -restart it also measures the durable store's restart-reconnect
// latency: N streaming watchers ride an Interface Server restart over a
// data dir, timed until every watcher is caught up — once recovered via
// journal replay and once degraded to the snapshot stampede.
//
// With -durability it also measures the sharded WAL: commit throughput
// per sync policy and cold-cache recovery time per shard count, landing
// in the artifact's durability_rows section.
//
// With -replicas it also measures the replicated watch plane: N SSE
// watchers (-replica-watchers) spread round-robin across a leader and
// its WAL-shipping read-only followers, timing edit→all-notified across
// the plane plus the per-follower replication lag, landing in the
// artifact's replication_rows section.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"livedev/internal/benchfmt"
	"livedev/internal/experiments"
)

func main() {
	// The replication fan-out re-execs this binary as its leader and
	// follower processes; when the child env var is set this runs the
	// child role and exits instead of benchmarking.
	experiments.ReplicationChild()
	os.Exit(run())
}

// parseSizes parses "1,100,1000" into watcher counts.
func parseSizes(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			continue
		}
		out = append(out, n)
	}
	return out
}

func run() int {
	calls := flag.Int("calls", 100, "RMI calls per configuration (the paper used 100)")
	payload := flag.Int("payload", 64, "echoed string payload size in bytes")
	parallel := flag.Int("parallel", 0, "concurrent callers for the parallel-call rows (0 disables)")
	refreshRounds := flag.Int("refresh-rounds", 12, "refresh-after-edit rounds per client strategy (0 disables)")
	pollInterval := flag.Duration("poll", 50*time.Millisecond, "polling client's refresh interval for the refresh rows")
	jsonPath := flag.String("json", "BENCH_rtt.json", "path for the machine-readable results (empty disables)")
	fanoutSizes := flag.String("fanout-watchers", "1,100,1000", "comma-separated watcher counts for the fan-out rows (empty disables)")
	fanoutEdits := flag.Int("fanout-edits", 5, "edit rounds per fan-out configuration")
	fanoutPoll := flag.Duration("fanout-poll", 25*time.Millisecond, "polling transport's interval for the fan-out rows")
	fanoutPayload := flag.Int("fanout-payload", 0, "published document payload for the fan-out rows, in bytes (0 = tiny)")
	fanoutStall := flag.Bool("fanout-stall", false, "also measure stalled-watcher backpressure isolation (stream-base vs stream-stall rows)")
	stallWatchers := flag.Int("fanout-stall-watchers", 10000, "healthy stream-watcher population for the stall rows")
	stallEdits := flag.Int("fanout-stall-edits", 8, "edit rounds for the stall rows")
	stallPayload := flag.Int("fanout-stall-payload", 16384, "published document payload for the stall rows, in bytes")
	restart := flag.Bool("restart", false, "also measure restart-reconnect latency (durable store; replay vs snapshot recovery)")
	restartWatchers := flag.Int("restart-watchers", 1000, "watcher count for the restart-reconnect rows")
	durability := flag.Bool("durability", false, "also measure WAL sync-policy throughput and sharded recovery time")
	replicaCounts := flag.String("replicas", "", "comma-separated replica counts for the replication rows (empty disables; ISSUE baseline: 1,2,4)")
	replicaWatchers := flag.Int("replica-watchers", 10000, "total watcher population for the replication rows")
	replicaEdits := flag.Int("replica-edits", 5, "edit rounds per replication configuration")
	flag.Parse()

	rows, err := experiments.RunTable1(experiments.Table1Config{
		Calls:        *calls,
		PayloadBytes: *payload,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtt-bench:", err)
		return 1
	}
	fmt.Print(experiments.FormatTable1(rows))

	var parallelRows []experiments.ParallelRTTRow
	if *parallel > 0 {
		parallelRows, err = experiments.RunTable1Parallel(experiments.Table1Config{
			Calls:        *calls,
			PayloadBytes: *payload,
		}, *parallel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rtt-bench:", err)
			return 1
		}
		fmt.Println()
		fmt.Print(experiments.FormatParallel(parallelRows))
	}

	var refreshRows []experiments.RefreshRow
	if *refreshRounds > 0 {
		refreshRows, err = experiments.RunRefreshLatency(experiments.RefreshConfig{
			Rounds:       *refreshRounds,
			PollInterval: *pollInterval,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "rtt-bench:", err)
			return 1
		}
		fmt.Println()
		fmt.Print(experiments.FormatRefresh(refreshRows))
	}

	var fanoutRows []experiments.FanoutRow
	if sizes := parseSizes(*fanoutSizes); len(sizes) > 0 {
		fanoutRows, err = experiments.RunWatchFanout(experiments.FanoutConfig{
			Watchers:     sizes,
			Edits:        *fanoutEdits,
			PollInterval: *fanoutPoll,
			Payload:      *fanoutPayload,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "rtt-bench:", err)
			return 1
		}
		fmt.Println()
		fmt.Print(experiments.FormatFanout(fanoutRows))
	}

	if *fanoutStall {
		stallRows, err := experiments.RunFanoutStall(experiments.FanoutStallConfig{
			Watchers: *stallWatchers,
			Edits:    *stallEdits,
			Payload:  *stallPayload,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "rtt-bench:", err)
			return 1
		}
		fmt.Println()
		fmt.Print(experiments.FormatFanout(stallRows))
		fanoutRows = append(fanoutRows, stallRows...)
	}

	if *restart {
		restartRows, err := experiments.RunRestartReconnect(experiments.RestartConfig{
			Watchers: *restartWatchers,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "rtt-bench:", err)
			return 1
		}
		fmt.Println()
		fmt.Print(experiments.FormatFanout(restartRows))
		// The restart rows share the fan-out row shape and land in the
		// same artifact section (restart→all-caught-up latency instead of
		// edit→all-notified).
		fanoutRows = append(fanoutRows, restartRows...)
	}

	var replicationRows []experiments.ReplicationRow
	if counts := parseSizes(*replicaCounts); len(counts) > 0 {
		replicationRows, err = experiments.RunReplicationFanout(experiments.ReplicationConfig{
			Replicas: counts,
			Watchers: *replicaWatchers,
			Edits:    *replicaEdits,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "rtt-bench:", err)
			return 1
		}
		fmt.Println()
		fmt.Print(experiments.FormatReplication(replicationRows))
	}

	var durabilityRows []experiments.DurabilityResult
	if *durability {
		durabilityRows, err = experiments.RunDurabilitySweep(experiments.DurabilityConfig{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "rtt-bench:", err)
			return 1
		}
		fmt.Println()
		fmt.Print(experiments.FormatDurability(durabilityRows))
	}

	if *jsonPath != "" {
		out := benchfmt.File{
			Schema:  benchfmt.Schema,
			Command: "rtt-bench",
			Calls:   *calls,
			Payload: *payload,
		}
		for _, r := range rows {
			out.Rows = append(out.Rows, benchfmt.BenchRow{
				Config:      r.Config,
				PaperRTTMs:  float64(r.PaperRTT.Milliseconds()),
				NsPerOp:     float64(r.Measured.Mean.Nanoseconds()),
				P50Ns:       float64(r.Measured.P50.Nanoseconds()),
				BytesPerOp:  r.BytesPerOp,
				AllocsPerOp: r.AllocsPerOp,
				N:           r.Measured.N,
			})
		}
		for _, r := range parallelRows {
			out.ParallelRows = append(out.ParallelRows, benchfmt.ParallelRow{
				Config:  r.Config,
				Workers: r.Workers,
				Calls:   r.Calls,
				NsPerOp: r.NsPerOp,
			})
		}
		for _, r := range refreshRows {
			out.RefreshRows = append(out.RefreshRows, benchfmt.RefreshRow{
				Mode:   r.Mode,
				Rounds: r.Rounds,
				MeanNs: float64(r.Mean.Nanoseconds()),
				P50Ns:  float64(r.P50.Nanoseconds()),
			})
		}
		for _, r := range fanoutRows {
			out.FanoutRows = append(out.FanoutRows, benchfmt.FanoutRow{
				Transport: r.Transport,
				Watchers:  r.Watchers,
				Edits:     r.Edits,
				MeanNs:    float64(r.Mean.Nanoseconds()),
				P50Ns:     float64(r.P50.Nanoseconds()),
				P99Ns:     float64(r.P99.Nanoseconds()),
				MaxNs:     float64(r.Max.Nanoseconds()),
			})
		}
		for _, r := range durabilityRows {
			row := benchfmt.DurabilityRow{
				Kind:       r.Kind,
				Shards:     r.Shards,
				Publishers: r.Publishers,
				Commits:    r.Commits,
				OpsPerSec:  r.OpsPerSec,
			}
			if r.Kind == "throughput" {
				row.Policy = r.Policy.String()
			}
			if r.Recovery > 0 {
				row.RecoveryMs = float64(r.Recovery.Nanoseconds()) / 1e6
			}
			out.DurabilityRows = append(out.DurabilityRows, row)
		}
		for _, r := range replicationRows {
			out.ReplicationRows = append(out.ReplicationRows, benchfmt.ReplicationRow{
				Replicas: r.Replicas,
				Watchers: r.Watchers,
				Edits:    r.Edits,
				MeanNs:   float64(r.Mean.Nanoseconds()),
				P50Ns:    float64(r.P50.Nanoseconds()),
				MaxNs:    float64(r.Max.Nanoseconds()),
				LagP50Ns: float64(r.LagP50.Nanoseconds()),
				LagP99Ns: float64(r.LagP99.Nanoseconds()),
			})
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "rtt-bench: encoding json:", err)
			return 1
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "rtt-bench: writing json:", err)
			return 1
		}
		fmt.Printf("\nwrote %s\n", *jsonPath)
	}
	return 0
}
