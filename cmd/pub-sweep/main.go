// Command pub-sweep explores the Section 5.6 publication-strategy design
// space: change-driven publication, periodic polling, and the paper's
// stable-timeout mechanism, replayed over a deterministic developer edit
// trace in virtual time.
//
// With -sync it also sweeps the durable store's WAL sync policies: a
// closed-loop concurrent publisher storm under buffered (none), group-
// commit, and per-commit (always) fsync, plus cold-cache recovery time
// for one-big-log versus sharded WAL layouts.
//
// Usage:
//
//	pub-sweep [-seed N] [-bursts N] [-stale-latency] [-sync]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"livedev/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	seed := flag.Int64("seed", 1, "edit-trace seed")
	bursts := flag.Int("bursts", 20, "edit bursts in the developer trace")
	staleLat := flag.Bool("stale-latency", false, "also measure Section 5.7 forced-publication latency")
	genCost := flag.Duration("gen-cost", 25*time.Millisecond, "synthetic interface-generation cost for -stale-latency")
	syncSweep := flag.Bool("sync", false, "also sweep durable-store WAL sync policies and recovery sharding")
	flag.Parse()

	cfg := experiments.DefaultSweep(*seed)
	cfg.Trace.Bursts = *bursts
	results, err := experiments.RunSweep(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pub-sweep:", err)
		return 1
	}
	fmt.Print(experiments.FormatSweep(results))

	if *staleLat {
		fmt.Println()
		stale, err := experiments.RunStaleLatency(*genCost, 10)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pub-sweep:", err)
			return 1
		}
		fmt.Print(experiments.FormatStale(stale))
	}

	if *syncSweep {
		fmt.Println()
		rows, err := experiments.RunDurabilitySweep(experiments.DurabilityConfig{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pub-sweep:", err)
			return 1
		}
		fmt.Print(experiments.FormatDurability(rows))
	}
	return 0
}
