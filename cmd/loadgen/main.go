// Command loadgen soaks a live SDE manager under mixed traffic and proves
// the graceful-lifecycle guarantee: calls across the SOAP, JSON, and h2b
// bindings (including a deliberately slow method so calls are genuinely
// in flight at every instant), an edit storm on a watched class, watcher
// churn (streaming cde clients connecting and disconnecting), and — unless
// -drain=false — one full Drain → Stop → restart cycle in the middle of
// the run, with every worker still firing.
//
// The soak asserts that no accepted call is dropped by the drain: a call
// that was in flight when Drain began must complete (http.Server.Shutdown
// waits for it), while calls arriving after the listener closed are
// *refused* — the expected signal that sends clients to another replica —
// and are reported separately, not counted as drops. It also scrapes the
// manager's /metrics endpoint and fails if the advertised gauges (calls,
// watcher counts, journal depth, WAL fsync lag, replication lag) are
// missing.
//
// Per-binding latency histograms (p50/p99/p999) land in the artifact's
// loadgen_rows section with -json, diffed warn-only by benchdiff.
//
// Usage:
//
//	loadgen [-duration D] [-callers N] [-slow-callers N] [-watchers N]
//	        [-churners N] [-edit-interval D] [-drain] [-drain-timeout D]
//	        [-data-dir DIR] [-json PATH]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"livedev/internal/benchfmt"
	"livedev/internal/cde"
	"livedev/internal/core"
	"livedev/internal/dyn"
	"livedev/internal/h2b"
	"livedev/internal/jsonb"
	"livedev/internal/soap"
	"livedev/internal/workload"
)

func main() {
	os.Exit(run())
}

// Classification guards: a failed call that started within connectGuard of
// the drain beginning may have lost the listener between Now() and its TCP
// connect — that is a refusal, not a drop. settleWindow absorbs the first
// reconnects after the restarted server is back up.
const (
	connectGuard = 25 * time.Millisecond
	settleWindow = 250 * time.Millisecond
	slowCallTime = 150 * time.Millisecond
)

// drainClock is the shared drain timeline: begin is set (unix nanos) the
// instant before Manager.Drain is invoked, end once the restarted server
// has all classes re-registered. Zero means "hasn't happened".
type drainClock struct {
	begin atomic.Int64
	end   atomic.Int64
}

// classify buckets one failed call by when it started relative to the
// drain window.
func (d *drainClock) classify(start time.Time) string {
	b, e := d.begin.Load(), d.end.Load()
	if b == 0 {
		return "error"
	}
	s := start.UnixNano()
	switch {
	case s < b-int64(connectGuard):
		// Accepted before the drain began and failed anyway: the drain
		// dropped an in-flight call. This is the bug the soak exists to
		// catch.
		return "dropped"
	case e == 0 || s <= e+int64(settleWindow):
		return "refused"
	default:
		return "error"
	}
}

// recorder accumulates one binding's outcomes.
type recorder struct {
	mu      sync.Mutex
	samples []time.Duration
	errors  int
	refused int
	dropped int
}

func (r *recorder) ok(d time.Duration) {
	r.mu.Lock()
	r.samples = append(r.samples, d)
	r.mu.Unlock()
}

func (r *recorder) fail(kind string) {
	r.mu.Lock()
	switch kind {
	case "dropped":
		r.dropped++
	case "refused":
		r.refused++
	default:
		r.errors++
	}
	r.mu.Unlock()
}

func (r *recorder) row(binding string, drains int) benchfmt.LoadgenRow {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := workload.Summarize(r.samples)
	return benchfmt.LoadgenRow{
		Binding: binding,
		Calls:   st.N + r.errors + r.refused + r.dropped,
		Errors:  r.errors,
		Dropped: r.dropped,
		MeanNs:  float64(st.Mean.Nanoseconds()),
		P50Ns:   float64(st.P50.Nanoseconds()),
		P99Ns:   float64(st.P99.Nanoseconds()),
		P999Ns:  float64(st.P999.Nanoseconds()),
		MaxNs:   float64(st.Max.Nanoseconds()),
		Drains:  drains,
	}
}

func echoClass(name string, slow time.Duration) *dyn.Class {
	c := dyn.NewClass(name)
	_, _ = c.AddMethod(dyn.MethodSpec{
		Name:        "echo",
		Params:      []dyn.Param{{Name: "s", Type: dyn.StringT}},
		Result:      dyn.StringT,
		Distributed: true,
		Body: func(_ *dyn.Instance, args []dyn.Value) (dyn.Value, error) {
			if slow > 0 {
				time.Sleep(slow)
			}
			return args[0], nil
		},
	})
	return c
}

// deployment is one running manager plus the registered soak classes and
// their endpoint strings. Restarting rebuilds it over the same addresses
// and data dir, so the endpoint strings — and every caller holding them —
// stay valid.
type deployment struct {
	mgr        *core.Manager
	soapSrv    core.Server
	evolveSrv  core.Server
	evolveID   dyn.MemberID
	soapEP     string
	slowEP     string
	jsonEP     string
	h2bEP      string
	h2bMux     string
	evolveURL  string
	httpBase   string
	ifaceAddr  string
	httpAddr   string
	corbaAddr  string
	classes    map[string]*dyn.Class
	evolveStep int
}

func deploy(ifaceAddr, httpAddr, corbaAddr, dataDir string, classes map[string]*dyn.Class) (*deployment, error) {
	mgr, err := core.NewManager(core.Config{
		InterfaceAddr: ifaceAddr,
		HTTPAddr:      httpAddr,
		CORBAAddr:     corbaAddr,
		DataDir:       dataDir,
		Sync:          core.SyncGroupCommit,
		Timeout:       10 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	d := &deployment{mgr: mgr, classes: classes, httpBase: mgr.HTTPBaseURL()}
	d.ifaceAddr = strings.TrimPrefix(mgr.InterfaceBaseURL(), "http://")
	d.httpAddr = strings.TrimPrefix(mgr.HTTPBaseURL(), "http://")
	d.corbaAddr = corbaAddr

	reg := func(name string, tech core.Technology) (core.Server, error) {
		srv, err := mgr.Register(classes[name], tech)
		if err != nil {
			return nil, fmt.Errorf("registering %s: %w", name, err)
		}
		if _, err := srv.CreateInstance(); err != nil {
			return nil, fmt.Errorf("instantiating %s: %w", name, err)
		}
		return srv, nil
	}
	if d.soapSrv, err = reg("LoadSOAP", core.TechSOAP); err != nil {
		_ = mgr.Close()
		return nil, err
	}
	d.soapEP = d.soapSrv.(*core.SOAPServer).Endpoint()
	slowSrv, err := reg("LoadSlow", core.TechSOAP)
	if err != nil {
		_ = mgr.Close()
		return nil, err
	}
	d.slowEP = slowSrv.(*core.SOAPServer).Endpoint()
	jsonSrv, err := reg("LoadJSON", core.Technology(jsonb.Name))
	if err != nil {
		_ = mgr.Close()
		return nil, err
	}
	d.jsonEP = jsonSrv.(*jsonb.Server).Endpoint()
	h2bSrv, err := reg("LoadH2B", core.Technology(h2b.Name))
	if err != nil {
		_ = mgr.Close()
		return nil, err
	}
	d.h2bEP = h2bSrv.(*h2b.Server).Endpoint()
	d.h2bMux = h2bSrv.(*h2b.Server).MuxAddr()
	if d.evolveSrv, err = reg("Evolving", core.TechSOAP); err != nil {
		_ = mgr.Close()
		return nil, err
	}
	d.evolveURL = d.evolveSrv.InterfaceURL()
	return d, nil
}

func run() int {
	duration := flag.Duration("duration", 15*time.Second, "soak duration")
	callers := flag.Int("callers", 3, "concurrent callers per fast binding")
	slowCallers := flag.Int("slow-callers", 2, "concurrent callers of the slow SOAP method")
	watchers := flag.Int("watchers", 6, "persistent streaming watch clients")
	churners := flag.Int("churners", 3, "watcher-churn loops (connect, hold, disconnect)")
	editInterval := flag.Duration("edit-interval", 100*time.Millisecond, "edit-storm interval on the watched class")
	drain := flag.Bool("drain", true, "run one Drain→Stop→restart cycle mid-soak")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "deadline passed to Manager.Drain")
	dataDir := flag.String("data-dir", "", "durable store directory (empty = temp dir)")
	jsonPath := flag.String("json", "", "merge loadgen_rows into this artifact (preserving other sections)")
	flag.Parse()

	core.RegisterBinding(jsonb.New())
	core.RegisterBinding(h2b.New())

	dir := *dataDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "loadgen-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			return 2
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	// The class objects persist across the restart (re-registered on the
	// new manager), so interface versions stay monotonic and reconnecting
	// watchers ride journal replay instead of seeing a version regression.
	classes := map[string]*dyn.Class{
		"LoadSOAP": echoClass("LoadSOAP", 0),
		"LoadSlow": echoClass("LoadSlow", slowCallTime),
		"LoadJSON": echoClass("LoadJSON", 0),
		"LoadH2B":  echoClass("LoadH2B", 0),
	}
	evolving := dyn.NewClass("Evolving")
	evolveID, err := evolving.AddMethod(dyn.MethodSpec{Name: "op0", Result: dyn.Int32T, Distributed: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return 2
	}
	classes["Evolving"] = evolving

	d, err := deploy("127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0", dir, classes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return 2
	}
	d.evolveID = evolveID
	defer func() { _ = d.mgr.Close() }()
	fmt.Printf("loadgen: soaking %s (endpoints %s, iface http://%s)\n", *duration, d.httpBase, d.ifaceAddr)

	var (
		clock   drainClock
		editMu  sync.Mutex // held across the restart so the edit storm never publishes into a stopped store
		wg      sync.WaitGroup
		recs    = map[string]*recorder{}
		dialRec = &recorder{}
	)
	for _, b := range []string{"soap", "soap-slow", "json", "h2b"} {
		recs[b] = &recorder{}
	}
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()

	worker := func(binding string, call func(context.Context) error) {
		defer wg.Done()
		rec := recs[binding]
		for ctx.Err() == nil {
			start := time.Now()
			cctx, ccancel := context.WithTimeout(context.Background(), 10*time.Second)
			err := call(cctx)
			ccancel()
			if err != nil {
				rec.fail(clock.classify(start))
				time.Sleep(20 * time.Millisecond)
				continue
			}
			rec.ok(time.Since(start))
		}
	}

	payload := strings.Repeat("x", 64)
	soapCall := func(ep, ns string) func(context.Context) error {
		client := &soap.Client{Endpoint: ep, ServiceNS: ns, HTTPClient: &http.Client{}}
		args := []soap.NamedValue{{Name: "s", Value: dyn.StringValue(payload)}}
		return func(ctx context.Context) error {
			_, err := client.CallContext(ctx, "echo", args, dyn.StringT)
			return err
		}
	}
	sig := dyn.MethodSig{Name: "echo", Params: []dyn.Param{{Name: "s", Type: dyn.StringT}}, Result: dyn.StringT}
	args := []dyn.Value{dyn.StringValue(payload)}
	jsonCall := func() func(context.Context) error {
		caller := &jsonb.Caller{Endpoint: d.jsonEP, HTTPClient: &http.Client{}}
		return func(ctx context.Context) error { _, err := caller.Call(ctx, sig, args); return err }
	}
	h2bCall := func() func(context.Context) error {
		// No Mux fast path: the dedicated mux listener gets a fresh port on
		// restart, while the shared h2c endpoint — the thing Drain actually
		// drains — keeps its address, so callers reconnect to it cleanly.
		caller := &h2b.Caller{Endpoint: d.h2bEP}
		return func(ctx context.Context) error { _, err := caller.Call(ctx, sig, args); return err }
	}
	for i := 0; i < *callers; i++ {
		wg.Add(3)
		go worker("soap", soapCall(d.soapEP, "urn:LoadSOAP"))
		go worker("json", jsonCall())
		go worker("h2b", h2bCall())
	}
	for i := 0; i < *slowCallers; i++ {
		wg.Add(1)
		go worker("soap-slow", soapCall(d.slowEP, "urn:LoadSlow"))
	}

	// Persistent streaming watchers: they should survive the drain via the
	// terminal draining frame and reconnect once the server is back.
	var watchClients []*cde.Client
	for i := 0; i < *watchers; i++ {
		c, err := cde.Dial(ctx, d.evolveURL, &cde.DialOptions{Watch: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: watcher dial:", err)
			return 2
		}
		watchClients = append(watchClients, c)
	}
	defer func() {
		for _, c := range watchClients {
			_ = c.Close()
		}
	}()

	// Watcher churn: connect, hold, disconnect — the reconnect-storm half
	// of the mixed traffic. Dial latency is its histogram.
	for i := 0; i < *churners; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				start := time.Now()
				dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
				c, err := cde.Dial(dctx, d.evolveURL, &cde.DialOptions{Watch: true})
				dcancel()
				if err != nil {
					dialRec.fail(clock.classify(start))
					time.Sleep(50 * time.Millisecond)
					continue
				}
				dialRec.ok(time.Since(start))
				time.Sleep(200 * time.Millisecond)
				_ = c.Close()
			}
		}()
	}

	// Edit storm on the watched class: rename + forced publication each
	// tick, serialized with the restart under editMu.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(*editInterval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
			}
			editMu.Lock()
			d.evolveStep++
			if err := evolving.RenameMethod(d.evolveID, fmt.Sprintf("op%d", d.evolveStep)); err == nil {
				d.evolveSrv.Publisher().PublishNow()
			}
			editMu.Unlock()
		}
	}()

	drains := 0
	if *drain {
		// Mid-soak drain cycle: scrape /metrics while healthy, then Drain →
		// Stop → redeploy on the same addresses and data dir.
		time.Sleep(*duration * 2 / 5)
		if err := checkMetrics(d.httpBase); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: metrics before drain:", err)
			return 1
		}
		editMu.Lock()
		clock.begin.Store(time.Now().UnixNano())
		dctx, dcancel := context.WithTimeout(context.Background(), *drainTimeout)
		derr := d.mgr.Drain(dctx)
		dcancel()
		serr := d.mgr.Stop()
		nd, err := deploy(d.ifaceAddr, d.httpAddr, d.corbaAddr, dir, classes)
		if err != nil {
			editMu.Unlock()
			fmt.Fprintln(os.Stderr, "loadgen: restart after drain:", err)
			return 1
		}
		nd.evolveID = d.evolveID
		nd.evolveStep = d.evolveStep
		if nd.soapEP != d.soapEP || nd.jsonEP != d.jsonEP || nd.h2bEP != d.h2bEP {
			editMu.Unlock()
			fmt.Fprintln(os.Stderr, "loadgen: restarted endpoints moved; callers would dial a dead address")
			return 1
		}
		*d = *nd
		clock.end.Store(time.Now().UnixNano())
		editMu.Unlock()
		drains++
		fmt.Printf("loadgen: drain cycle done (drain err=%v, stop err=%v)\n", derr, serr)
	}

	<-ctx.Done()
	wg.Wait()

	if err := checkMetrics(d.httpBase); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen: metrics after soak:", err)
		return 1
	}

	var totalDrainFrames, totalBackoffs uint64
	for _, c := range watchClients {
		st := c.Stats()
		totalDrainFrames += st.Drains
		totalBackoffs += st.Backoffs
	}

	rows := []benchfmt.LoadgenRow{
		recs["soap"].row("soap", drains),
		recs["soap-slow"].row("soap-slow", drains),
		recs["json"].row("json", drains),
		recs["h2b"].row("h2b", drains),
	}
	dialRow := dialRec.row("watch-dial", drains)
	dialRow.Watchers = *watchers + *churners
	rows = append(rows, dialRow)

	fmt.Printf("\n%-12s %8s %7s %7s %7s %10s %10s %10s\n",
		"binding", "calls", "errs", "refused", "dropped", "p50", "p99", "p999")
	exit := 0
	for i, r := range rows {
		refused := 0
		switch r.Binding {
		case "watch-dial":
			refused = dialRec.refused
		default:
			refused = recs[r.Binding].refused
		}
		fmt.Printf("%-12s %8d %7d %7d %7d %10s %10s %10s\n",
			r.Binding, r.Calls, r.Errors, refused, r.Dropped,
			time.Duration(r.P50Ns), time.Duration(r.P99Ns), time.Duration(r.P999Ns))
		if r.Dropped > 0 {
			exit = 1
		}
		_ = i
	}
	fmt.Printf("\nwatchers: %d persistent, drain frames seen %d, backoff waits %d\n",
		*watchers, totalDrainFrames, totalBackoffs)
	if exit != 0 {
		fmt.Fprintln(os.Stderr, "loadgen: FAIL — in-flight calls were dropped during drain")
	} else if *drain {
		fmt.Println("loadgen: drain cycle dropped zero in-flight calls")
	}

	if *jsonPath != "" {
		if err := mergeRows(*jsonPath, rows); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			return 1
		}
		fmt.Printf("merged loadgen_rows into %s\n", *jsonPath)
	}
	return exit
}

// requiredMetrics are the gauges docs/ops.md advertises; the soak fails if
// a scrape is missing any of them.
var requiredMetrics = []string{
	"livedev_endpoint_requests_total",
	"livedev_store_commits_total",
	"livedev_store_journal_depth",
	"livedev_watchers",
	"livedev_wal_fsync_lag",
	"livedev_wal_fsyncs_total",
	"livedev_repl_lag",
}

func checkMetrics(base string) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/metrics returned %s", resp.Status)
	}
	for _, name := range requiredMetrics {
		if !strings.Contains(string(body), name) {
			return fmt.Errorf("/metrics missing %s", name)
		}
	}
	return nil
}

// mergeRows writes the loadgen_rows section into the artifact at path,
// preserving every other section byte-for-byte (including ones this tool
// does not know about).
func mergeRows(path string, rows []benchfmt.LoadgenRow) error {
	raw := map[string]json.RawMessage{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &raw); err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
	} else {
		schema, _ := json.Marshal(benchfmt.Schema)
		command, _ := json.Marshal("loadgen")
		raw["schema"], raw["command"] = schema, command
	}
	enc, err := json.Marshal(rows)
	if err != nil {
		return err
	}
	raw["loadgen_rows"] = enc
	out, err := json.MarshalIndent(raw, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
