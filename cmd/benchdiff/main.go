// Command benchdiff compares a fresh rtt-bench JSON artifact against the
// committed baseline and fails on performance regressions.
//
// Table 1 rows (the invocation hot path, measured in go-bench units) are
// gated hard: a ns/op regression beyond -max-regress-pct fails the run, as
// does a row that disappeared. The refresh, fan-out, durability, and
// replication rows are wall-clock (and, for durability, disk-bound)
// experiments — inherently noisy on shared CI runners — so they are
// diffed warn-only. Artifact
// sections this tool does not know at all are named and skipped, never
// failed: a new rtt-bench section must not break the CI gate before its
// diff logic exists.
//
// Usage:
//
//	benchdiff -baseline BENCH_rtt.json -fresh BENCH_rtt_ci.json [-max-regress-pct 25]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"livedev/internal/benchfmt"
)

func main() {
	os.Exit(run())
}

func run() int {
	baselinePath := flag.String("baseline", "BENCH_rtt.json", "committed baseline artifact")
	freshPath := flag.String("fresh", "BENCH_rtt_ci.json", "fresh rtt-bench artifact")
	maxRegress := flag.Float64("max-regress-pct", 25, "maximum allowed ns/op regression on Table 1 rows, in percent")
	flag.Parse()

	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 2
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 2
	}

	failed := false

	// Table 1 rows: hard gate on ns/op.
	freshRows := make(map[string]benchfmt.BenchRow, len(fresh.Rows))
	for _, r := range fresh.Rows {
		freshRows[r.Config] = r
	}
	for _, base := range baseline.Rows {
		now, ok := freshRows[base.Config]
		if !ok {
			fmt.Printf("FAIL %-22s row missing from the fresh run\n", base.Config)
			failed = true
			continue
		}
		delta := pct(base.NsPerOp, now.NsPerOp)
		status := "ok  "
		if base.NsPerOp > 0 && delta > *maxRegress {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-22s ns/op %10.0f -> %10.0f  (%+.1f%%, allocs %.1f -> %.1f)\n",
			status, base.Config, base.NsPerOp, now.NsPerOp, delta, base.AllocsPerOp, now.AllocsPerOp)
	}

	// Parallel rows: hard gate on ns/op, like the serial Table 1 rows —
	// both measure the invocation hot path. Keyed by config only: workers
	// tracks GOMAXPROCS and legitimately differs between the machine that
	// committed the baseline and the CI runner.
	freshParallel := make(map[string]benchfmt.ParallelRow, len(fresh.ParallelRows))
	for _, r := range fresh.ParallelRows {
		freshParallel[r.Config] = r
	}
	for _, base := range baseline.ParallelRows {
		now, ok := freshParallel[base.Config]
		if !ok {
			fmt.Printf("FAIL %-22s parallel row missing from the fresh run\n", base.Config)
			failed = true
			continue
		}
		delta := pct(base.NsPerOp, now.NsPerOp)
		status := "ok  "
		if base.NsPerOp > 0 && delta > *maxRegress {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-22s parallel ns/op %10.0f -> %10.0f  (%+.1f%%, workers %d -> %d)\n",
			status, base.Config, base.NsPerOp, now.NsPerOp, delta, base.Workers, now.Workers)
	}

	// Refresh rows: warn-only (wall-clock experiment).
	freshRefresh := make(map[string]benchfmt.RefreshRow, len(fresh.RefreshRows))
	for _, r := range fresh.RefreshRows {
		freshRefresh[r.Mode] = r
	}
	for _, base := range baseline.RefreshRows {
		now, ok := freshRefresh[base.Mode]
		if !ok {
			fmt.Printf("warn %-22s refresh row missing from the fresh run\n", base.Mode)
			continue
		}
		fmt.Printf("%s %-22s mean %12.0fns -> %12.0fns (%+.1f%%)\n",
			warnTag(pct(base.MeanNs, now.MeanNs), *maxRegress), base.Mode, base.MeanNs, now.MeanNs, pct(base.MeanNs, now.MeanNs))
	}

	// Fan-out rows: warn-only.
	key := func(r benchfmt.FanoutRow) string { return fmt.Sprintf("%s@%d", r.Transport, r.Watchers) }
	freshFanout := make(map[string]benchfmt.FanoutRow, len(fresh.FanoutRows))
	for _, r := range fresh.FanoutRows {
		freshFanout[key(r)] = r
	}
	for _, base := range baseline.FanoutRows {
		now, ok := freshFanout[key(base)]
		if !ok {
			fmt.Printf("warn %-22s fan-out row missing from the fresh run\n", key(base))
			continue
		}
		fmt.Printf("%s %-22s mean %12.0fns -> %12.0fns (%+.1f%%), p99 %12.0fns -> %12.0fns\n",
			warnTag(pct(base.MeanNs, now.MeanNs), *maxRegress), key(base), base.MeanNs, now.MeanNs,
			pct(base.MeanNs, now.MeanNs), base.P99Ns, now.P99Ns)
	}

	// Durability rows: warn-only. Throughput is ops/sec (a drop is the
	// regression), recovery is wall-clock milliseconds (a rise is) — both
	// disk-bound and far too machine-dependent to gate on.
	dkey := func(r benchfmt.DurabilityRow) string {
		if r.Kind == "throughput" {
			return fmt.Sprintf("throughput/%s@%d-shard", r.Policy, r.Shards)
		}
		return fmt.Sprintf("recovery@%d-shard", r.Shards)
	}
	freshDur := make(map[string]benchfmt.DurabilityRow, len(fresh.DurabilityRows))
	for _, r := range fresh.DurabilityRows {
		freshDur[dkey(r)] = r
	}
	for _, base := range baseline.DurabilityRows {
		now, ok := freshDur[dkey(base)]
		if !ok {
			fmt.Printf("warn %-26s durability row missing from the fresh run\n", dkey(base))
			continue
		}
		if base.Kind == "throughput" {
			drop := pct(now.OpsPerSec, base.OpsPerSec) // inverted: fewer ops = regression
			fmt.Printf("%s %-26s %10.0f ops/s -> %10.0f (%+.1f%%)\n",
				warnTag(drop, *maxRegress), dkey(base), base.OpsPerSec, now.OpsPerSec, -drop)
		} else {
			rise := pct(base.RecoveryMs, now.RecoveryMs)
			fmt.Printf("%s %-26s %9.1fms recovery -> %9.1fms (%+.1f%%)\n",
				warnTag(rise, *maxRegress), dkey(base), base.RecoveryMs, now.RecoveryMs, rise)
		}
	}

	// Replication rows: warn-only (wall-clock, multi-process-shaped
	// experiment). Both the plane-wide notify latency and the follower
	// apply lag are diffed.
	rkey := func(r benchfmt.ReplicationRow) string { return fmt.Sprintf("%d-replicas@%d", r.Replicas, r.Watchers) }
	freshRepl := make(map[string]benchfmt.ReplicationRow, len(fresh.ReplicationRows))
	for _, r := range fresh.ReplicationRows {
		freshRepl[rkey(r)] = r
	}
	for _, base := range baseline.ReplicationRows {
		now, ok := freshRepl[rkey(base)]
		if !ok {
			fmt.Printf("warn %-22s replication row missing from the fresh run\n", rkey(base))
			continue
		}
		fmt.Printf("%s %-22s mean %12.0fns -> %12.0fns (%+.1f%%), lag p99 %10.0fns -> %10.0fns\n",
			warnTag(pct(base.MeanNs, now.MeanNs), *maxRegress), rkey(base),
			base.MeanNs, now.MeanNs, pct(base.MeanNs, now.MeanNs), base.LagP99Ns, now.LagP99Ns)
	}

	// Loadgen rows: warn-only (mixed-traffic wall-clock soak). Latency is
	// diffed like the other wall-clock sections; a nonzero dropped count is
	// called out loudly but the soak itself is the hard gate on drops.
	lkey := func(r benchfmt.LoadgenRow) string { return r.Binding }
	freshLoad := make(map[string]benchfmt.LoadgenRow, len(fresh.LoadgenRows))
	for _, r := range fresh.LoadgenRows {
		freshLoad[lkey(r)] = r
	}
	for _, base := range baseline.LoadgenRows {
		now, ok := freshLoad[lkey(base)]
		if !ok {
			fmt.Printf("warn %-22s loadgen row missing from the fresh run\n", lkey(base))
			continue
		}
		tag := warnTag(pct(base.P99Ns, now.P99Ns), *maxRegress)
		if now.Dropped > 0 {
			tag = "warn"
		}
		fmt.Printf("%s %-22s loadgen p50 %10.0fns -> %10.0fns, p99 %10.0fns -> %10.0fns (%+.1f%%), dropped %d\n",
			tag, lkey(base), base.P50Ns, now.P50Ns, base.P99Ns, now.P99Ns,
			pct(base.P99Ns, now.P99Ns), now.Dropped)
	}

	// Sections this tool has no diff logic for yet must not break the CI
	// gate: name them so a future section lands green until a diff is
	// written for it.
	for _, name := range unknownSections(*freshPath) {
		fmt.Printf("note %-26s section not diffed (unknown to benchdiff)\n", name)
	}

	if failed {
		fmt.Printf("\nbenchdiff: Table 1 regression beyond %.0f%% — failing\n", *maxRegress)
		return 1
	}
	fmt.Println("\nbenchdiff: within budget")
	return 0
}

// knownSections are the artifact keys benchdiff understands (scalar header
// fields included, so only genuinely new row sections are reported).
var knownSections = map[string]bool{
	"schema": true, "command": true, "calls": true, "payload_bytes": true,
	"rows": true, "parallel_rows": true, "refresh_rows": true, "fanout_rows": true,
	"durability_rows": true, "replication_rows": true, "loadgen_rows": true,
}

// unknownSections lists top-level artifact keys this tool has no handling
// for. Errors are ignored: the file already parsed once via load.
func unknownSections(path string) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil
	}
	var out []string
	for name := range raw {
		if !knownSections[name] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

func load(path string) (benchfmt.File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return benchfmt.File{}, err
	}
	var f benchfmt.File
	if err := json.Unmarshal(data, &f); err != nil {
		return benchfmt.File{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	return f, nil
}

// pct is the regression of now over base in percent (positive = slower).
func pct(base, now float64) float64 {
	if base <= 0 {
		return 0
	}
	return (now - base) / base * 100
}

func warnTag(delta, threshold float64) string {
	if delta > threshold {
		return "warn"
	}
	return "ok  "
}
