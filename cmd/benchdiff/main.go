// Command benchdiff compares a fresh rtt-bench JSON artifact against the
// committed baseline and fails on performance regressions.
//
// Table 1 rows (the invocation hot path, measured in go-bench units) are
// gated hard: a ns/op regression beyond -max-regress-pct fails the run, as
// does a row that disappeared. The refresh and fan-out rows are wall-clock
// latency experiments — inherently noisy on shared CI runners — so they are
// diffed warn-only.
//
// Usage:
//
//	benchdiff -baseline BENCH_rtt.json -fresh BENCH_rtt_ci.json [-max-regress-pct 25]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"livedev/internal/benchfmt"
)

func main() {
	os.Exit(run())
}

func run() int {
	baselinePath := flag.String("baseline", "BENCH_rtt.json", "committed baseline artifact")
	freshPath := flag.String("fresh", "BENCH_rtt_ci.json", "fresh rtt-bench artifact")
	maxRegress := flag.Float64("max-regress-pct", 25, "maximum allowed ns/op regression on Table 1 rows, in percent")
	flag.Parse()

	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 2
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 2
	}

	failed := false

	// Table 1 rows: hard gate on ns/op.
	freshRows := make(map[string]benchfmt.BenchRow, len(fresh.Rows))
	for _, r := range fresh.Rows {
		freshRows[r.Config] = r
	}
	for _, base := range baseline.Rows {
		now, ok := freshRows[base.Config]
		if !ok {
			fmt.Printf("FAIL %-22s row missing from the fresh run\n", base.Config)
			failed = true
			continue
		}
		delta := pct(base.NsPerOp, now.NsPerOp)
		status := "ok  "
		if base.NsPerOp > 0 && delta > *maxRegress {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-22s ns/op %10.0f -> %10.0f  (%+.1f%%, allocs %.1f -> %.1f)\n",
			status, base.Config, base.NsPerOp, now.NsPerOp, delta, base.AllocsPerOp, now.AllocsPerOp)
	}

	// Refresh rows: warn-only (wall-clock experiment).
	freshRefresh := make(map[string]benchfmt.RefreshRow, len(fresh.RefreshRows))
	for _, r := range fresh.RefreshRows {
		freshRefresh[r.Mode] = r
	}
	for _, base := range baseline.RefreshRows {
		now, ok := freshRefresh[base.Mode]
		if !ok {
			fmt.Printf("warn %-22s refresh row missing from the fresh run\n", base.Mode)
			continue
		}
		fmt.Printf("%s %-22s mean %12.0fns -> %12.0fns (%+.1f%%)\n",
			warnTag(pct(base.MeanNs, now.MeanNs), *maxRegress), base.Mode, base.MeanNs, now.MeanNs, pct(base.MeanNs, now.MeanNs))
	}

	// Fan-out rows: warn-only.
	key := func(r benchfmt.FanoutRow) string { return fmt.Sprintf("%s@%d", r.Transport, r.Watchers) }
	freshFanout := make(map[string]benchfmt.FanoutRow, len(fresh.FanoutRows))
	for _, r := range fresh.FanoutRows {
		freshFanout[key(r)] = r
	}
	for _, base := range baseline.FanoutRows {
		now, ok := freshFanout[key(base)]
		if !ok {
			fmt.Printf("warn %-22s fan-out row missing from the fresh run\n", key(base))
			continue
		}
		fmt.Printf("%s %-22s mean %12.0fns -> %12.0fns (%+.1f%%)\n",
			warnTag(pct(base.MeanNs, now.MeanNs), *maxRegress), key(base), base.MeanNs, now.MeanNs, pct(base.MeanNs, now.MeanNs))
	}

	if failed {
		fmt.Printf("\nbenchdiff: Table 1 regression beyond %.0f%% — failing\n", *maxRegress)
		return 1
	}
	fmt.Println("\nbenchdiff: within budget")
	return 0
}

func load(path string) (benchfmt.File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return benchfmt.File{}, err
	}
	var f benchfmt.File
	if err := json.Unmarshal(data, &f); err != nil {
		return benchfmt.File{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	return f, nil
}

// pct is the regression of now over base in percent (positive = slower).
func pct(base, now float64) float64 {
	if base <= 0 {
		return 0
	}
	return (now - base) / base * 100
}

func warnTag(delta, threshold float64) string {
	if delta > threshold {
		return "warn"
	}
	return "ok  "
}
