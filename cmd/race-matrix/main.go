// Command race-matrix regenerates the paper's Figures 7 and 8: the
// consistency matrices of publication/update interleavings under active
// publishing (only 3 of 9 combinations let the client developer see the
// interface change behind an error) and under the reactive protocol of
// Sections 5.7 and 6 (all 16 combinations are consistent).
package main

import (
	"fmt"

	"livedev/internal/raceplan"
)

func main() {
	fmt.Print(raceplan.Render(raceplan.ActivePublishing))
	fmt.Println()
	fmt.Print(raceplan.Render(raceplan.ReactivePublishing))
}
