// Command ifdump fetches a published interface description (WSDL,
// CORBA-IDL, or an h2b binary-binding descriptor) from an SDE Interface
// Server, compiles it the way a CDE client would, and prints both the raw
// document and the resolved method signatures with their version headers —
// a debugging window into the publication protocol.
//
// With -watch N it then follows the document through the Interface
// Server's long-poll watch protocol, printing each newly committed version
// as it is pushed (N updates, then exit; 0 follows forever) — a live view
// of the publication store's commits, coalescing included. With -stream
// the follow rides the SSE streaming transport on one held connection
// instead, marking replayed (journal catch-up) and snapshot events.
//
// With -stats it also fetches the server's publication-store counters
// (the /.stats endpoint on the same host as the document URL) and prints
// them — commits, coalescing, journal replays, for a durable store the
// WAL durability block (per-shard lsns, fsyncs, group-commit batch
// sizes, sync-wait totals), for a replicated server the Replication
// block (role, per-shard applied vs leader lsns, lag, bootstrap and
// reconnect counts), and the watch fan-out block: held watchers per
// registry shard, commit wakeups, delivery batch-size percentiles, and
// the backpressure evictions/resets. Pointed at a read-only replica
// (sde-server -follow) this is the quickest way to see how far behind
// its leader it is.
//
// Usage:
//
//	ifdump -wsdl URL [-watch N] [-stream] [-stats]
//	ifdump -idl URL [-iface NAME] [-watch N] [-stream] [-stats]
//	ifdump -h2b URL [-watch N] [-stream] [-stats]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"time"

	"livedev/internal/h2b"
	"livedev/internal/idl"
	"livedev/internal/ifsvr"
	"livedev/internal/wsdl"
)

func main() {
	os.Exit(run())
}

func run() int {
	wsdlURL := flag.String("wsdl", "", "WSDL document URL")
	idlURL := flag.String("idl", "", "CORBA-IDL document URL")
	h2bURL := flag.String("h2b", "", "h2b binary-binding descriptor URL")
	ifaceName := flag.String("iface", "", "interface name to resolve (IDL mode; default: the only interface)")
	raw := flag.Bool("raw", false, "print the raw document too")
	watch := flag.Int("watch", -1, "after dumping, follow the document via the watch protocol for N updates (0 = forever)")
	stream := flag.Bool("stream", false, "follow over the SSE streaming transport instead of long-polling")
	stats := flag.Bool("stats", false, "also fetch and print the server's publication-store counters (/.stats)")
	flag.Parse()

	switch {
	case *wsdlURL != "":
		return dump(*wsdlURL, *raw, *watch, *stream, *stats, func(doc ifsvr.Document) error {
			return printWSDL(doc)
		})
	case *idlURL != "":
		name := *ifaceName
		return dump(*idlURL, *raw, *watch, *stream, *stats, func(doc ifsvr.Document) error {
			return printIDL(doc, name)
		})
	case *h2bURL != "":
		return dump(*h2bURL, *raw, *watch, *stream, *stats, printH2B)
	default:
		fmt.Fprintln(os.Stderr, "ifdump: need -wsdl URL, -idl URL, or -h2b URL")
		return 2
	}
}

// printStats fetches the Interface Server's store counters from the
// /.stats endpoint on the document URL's host and prints them verbatim
// (the server already emits indented JSON).
func printStats(docURL string) error {
	u, err := url.Parse(docURL)
	if err != nil {
		return fmt.Errorf("stats: parsing %s: %w", docURL, err)
	}
	statsURL := u.Scheme + "://" + u.Host + ifsvr.StatsPath
	resp, err := http.Get(statsURL)
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stats: %s returned %s", statsURL, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("stats: reading %s: %w", statsURL, err)
	}
	fmt.Printf("\nstore stats (%s):\n%s", statsURL, body)
	return nil
}

// dump fetches and prints the document once, then optionally follows it
// through the watch protocol (long-poll rounds, or one SSE stream).
func dump(url string, raw bool, watch int, stream, stats bool, print func(ifsvr.Document) error) int {
	ctx := context.Background()
	doc, err := ifsvr.FetchContext(ctx, nil, url)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ifdump:", err)
		return 1
	}
	if err := printDoc(doc, raw, print); err != nil {
		fmt.Fprintln(os.Stderr, "ifdump:", err)
		return 1
	}
	if stats {
		if err := printStats(url); err != nil {
			fmt.Fprintln(os.Stderr, "ifdump:", err)
			return 1
		}
	}
	if watch < 0 {
		return 0
	}
	if stream {
		return streamFollow(ctx, url, doc, raw, watch, print)
	}
	for n := 0; watch == 0 || n < watch; n++ {
		next, err := ifsvr.WatchNewer(ctx, nil, url, doc.Version)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ifdump: watch:", err)
			return 1
		}
		doc = next
		fmt.Println("\n--- watch update ---")
		if err := printDoc(doc, raw, print); err != nil {
			fmt.Fprintln(os.Stderr, "ifdump:", err)
			return 1
		}
	}
	return 0
}

// streamFollow follows the document over the SSE transport, reconnecting
// from the last seen epoch (journal replay) if the stream breaks.
func streamFollow(ctx context.Context, url string, doc ifsvr.Document, raw bool, watch int, print func(ifsvr.Document) error) int {
	n := 0
	after := doc.Epoch
	for watch == 0 || n < watch {
		streamCtx, cancel := context.WithCancel(ctx)
		err := ifsvr.WatchStream(streamCtx, nil, url, after, func(ev ifsvr.StreamEvent) {
			after = ev.Doc.Epoch
			switch {
			case ev.Snapshot:
				fmt.Println("\n--- stream snapshot (journal evicted; full catch-up) ---")
			case ev.Replayed:
				fmt.Println("\n--- stream replay (journal catch-up) ---")
			default:
				fmt.Println("\n--- stream update ---")
			}
			if perr := printDoc(ev.Doc, raw, print); perr != nil {
				fmt.Fprintln(os.Stderr, "ifdump:", perr)
			}
			n++
			if watch != 0 && n >= watch {
				cancel()
			}
		})
		cancel()
		if watch != 0 && n >= watch {
			break
		}
		if errors.Is(err, ifsvr.ErrStreamUnsupported) {
			fmt.Fprintln(os.Stderr, "ifdump: server does not stream; use plain -watch")
			return 1
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ifdump: stream:", err)
		}
		// Reconnect pacing: a dead or unreachable server must not turn the
		// follow loop into a connect storm.
		time.Sleep(time.Second)
	}
	return 0
}

func printDoc(doc ifsvr.Document, raw bool, print func(ifsvr.Document) error) error {
	gen := ""
	if doc.Generation != 0 {
		gen = fmt.Sprintf(", generation %d", doc.Generation)
	}
	fmt.Printf("document version %d (descriptor version %d, store epoch %d%s)\n",
		doc.Version, doc.DescriptorVersion, doc.Epoch, gen)
	if raw {
		fmt.Println(doc.Content)
	}
	return print(doc)
}

func printWSDL(doc ifsvr.Document) error {
	parsed, err := wsdl.Parse([]byte(doc.Content))
	if err != nil {
		return fmt.Errorf("compiling WSDL: %w", err)
	}
	fmt.Printf("service %s at %s\n", parsed.ServiceName, parsed.Endpoint)
	for _, m := range parsed.Methods {
		fmt.Println("  ", m)
	}
	return nil
}

func printH2B(doc ifsvr.Document) error {
	desc, endpoint, mux, err := h2b.ParseDoc(doc.Content)
	if err != nil {
		return fmt.Errorf("parsing h2b descriptor: %w", err)
	}
	fmt.Printf("class %s at %s", desc.ClassName, endpoint)
	if mux != "" {
		fmt.Printf(" (mux %s)", mux)
	}
	fmt.Println()
	for _, m := range desc.Methods {
		fmt.Println("  ", m)
	}
	return nil
}

func printIDL(doc ifsvr.Document, ifaceName string) error {
	parsed, err := idl.Parse(doc.Content)
	if err != nil {
		return fmt.Errorf("parsing IDL: %w", err)
	}
	if ifaceName == "" {
		if len(parsed.Interfaces) != 1 {
			return fmt.Errorf("module %s has %d interfaces; pick one with -iface",
				parsed.Module, len(parsed.Interfaces))
		}
		ifaceName = parsed.Interfaces[0].Name
	}
	desc, err := idl.Resolve(parsed, ifaceName)
	if err != nil {
		return fmt.Errorf("resolving IDL: %w", err)
	}
	fmt.Printf("module %s, interface %s (repository id %s)\n",
		parsed.Module, ifaceName, parsed.RepositoryID(ifaceName))
	for _, m := range desc.Methods {
		fmt.Println("  ", m)
	}
	return nil
}
