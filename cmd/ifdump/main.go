// Command ifdump fetches a published interface description (WSDL or
// CORBA-IDL) from an SDE Interface Server, compiles it the way a CDE
// client would, and prints both the raw document and the resolved method
// signatures with their version headers — a debugging window into the
// publication protocol.
//
// Usage:
//
//	ifdump -wsdl URL
//	ifdump -idl URL [-iface NAME]
package main

import (
	"flag"
	"fmt"
	"os"

	"livedev/internal/idl"
	"livedev/internal/ifsvr"
	"livedev/internal/wsdl"
)

func main() {
	os.Exit(run())
}

func run() int {
	wsdlURL := flag.String("wsdl", "", "WSDL document URL")
	idlURL := flag.String("idl", "", "CORBA-IDL document URL")
	ifaceName := flag.String("iface", "", "interface name to resolve (IDL mode; default: the only interface)")
	raw := flag.Bool("raw", false, "print the raw document too")
	flag.Parse()

	switch {
	case *wsdlURL != "":
		return dumpWSDL(*wsdlURL, *raw)
	case *idlURL != "":
		return dumpIDL(*idlURL, *ifaceName, *raw)
	default:
		fmt.Fprintln(os.Stderr, "ifdump: need -wsdl URL or -idl URL")
		return 2
	}
}

func dumpWSDL(url string, raw bool) int {
	doc, err := ifsvr.Fetch(nil, url)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ifdump:", err)
		return 1
	}
	fmt.Printf("document version %d (descriptor version %d)\n", doc.Version, doc.DescriptorVersion)
	if raw {
		fmt.Println(doc.Content)
	}
	parsed, err := wsdl.Parse([]byte(doc.Content))
	if err != nil {
		fmt.Fprintln(os.Stderr, "ifdump: compiling WSDL:", err)
		return 1
	}
	fmt.Printf("service %s at %s\n", parsed.ServiceName, parsed.Endpoint)
	for _, m := range parsed.Methods {
		fmt.Println("  ", m)
	}
	return 0
}

func dumpIDL(url, ifaceName string, raw bool) int {
	doc, err := ifsvr.Fetch(nil, url)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ifdump:", err)
		return 1
	}
	fmt.Printf("document version %d (descriptor version %d)\n", doc.Version, doc.DescriptorVersion)
	if raw {
		fmt.Println(doc.Content)
	}
	parsed, err := idl.Parse(doc.Content)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ifdump: parsing IDL:", err)
		return 1
	}
	if ifaceName == "" {
		if len(parsed.Interfaces) != 1 {
			fmt.Fprintf(os.Stderr, "ifdump: module %s has %d interfaces; pick one with -iface\n",
				parsed.Module, len(parsed.Interfaces))
			return 2
		}
		ifaceName = parsed.Interfaces[0].Name
	}
	desc, err := idl.Resolve(parsed, ifaceName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ifdump: resolving IDL:", err)
		return 1
	}
	fmt.Printf("module %s, interface %s (repository id %s)\n",
		parsed.Module, ifaceName, parsed.RepositoryID(ifaceName))
	for _, m := range desc.Methods {
		fmt.Println("  ", m)
	}
	return 0
}
