module livedev

go 1.24
